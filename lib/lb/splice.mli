(** In-kernel L7 splice fast path: userspace-directed sockmap handoff.

    Once a connection is established and its session routed, the LB's
    remaining per-byte work is pure forwarding — and the userspace
    proxy pays two syscalls plus two full copies for every chunk.
    This module models the kernel-bypass alternative: userspace
    installs the connection into a {!Kernel.Ebpf_maps.Sockmap} and
    attaches a verified redirect program
    ({!Hermes.Dispatch.splice_prog}); subsequent payload runs the
    program in-kernel (through the closure JIT) and splices straight
    to the owning worker's socket, optionally copying a bounded prefix
    up for L7 inspection ([bpf_sk_copy]).

    Userspace keeps {e directing} the fast path — attach on
    establishment, teardown on close/reset/isolate/restart — and keeps
    its own view of the map ({e conn → (key, worker)}).  The safety of
    the whole scheme rests on those two views agreeing, so:

    - {b strict} mode (default) double-checks every redirect against
      the forwarding connection's id and refuses attaches whose slot
      is already taken; a stale entry degrades to the proxy path and
      is counted in [desync_blocked].
    - {!set_desynced} injects the failure the check defends against: a
      worker whose [sock_delete]s are lost, leaving stale entries that
      — without strict mode — redirect other connections' bytes to a
      torn-down worker.  The chaos monitors flag any such redirect. *)

type t

type stats = {
  mutable attaches : int;  (** sockmap entries installed *)
  mutable collisions : int;
      (** attaches refused (strict) or mis-recorded (sloppy) because
          the slot already carried another live connection *)
  mutable redirects : int;  (** chunks forwarded in-kernel *)
  mutable fallbacks : int;  (** chunks sent back to the proxy path *)
  mutable desync_blocked : int;
      (** redirects refused by the strict conn-id check — each one is
          a stale sockmap entry caught before it misdelivered bytes *)
  mutable teardowns : int;
  mutable prog_cycles : int;  (** redirect-program cycles (JIT) *)
  mutable splice_cycles : int;
      (** in-kernel forwarding cycles ({!Netsim.Copy.splice_cycles}
          plus the selective-copy cost) *)
  mutable redirected_bytes : int;
  mutable copied_bytes : int;  (** bytes selectively copied up *)
}

type decision =
  | Redirect of { conn : int; worker : int; copied : int; cycles : int }
      (** the kernel spliced the chunk to [worker]; [conn] is the
          connection the sockmap slot {e named} — equal to the caller's
          under strict mode, possibly stale without it.  [cycles] is
          this chunk's total in-kernel cost (program + splice +
          selective copy), for latency and Table-5 accounting. *)
  | Fallback  (** serve through the userspace proxy *)

val create : workers:int -> ?slots:int -> ?copy:int -> unit -> t
(** [slots] (default 4096) is rounded up to a power of two so the
    program's masked key verifies with zero residual checks — {!create}
    asserts {!Kernel.Ebpf_vm.fully_proved} and rejects otherwise.
    [copy] is the per-chunk selective-copy budget in bytes (default 0;
    bounded by {!Kernel.Ebpf.copy_limit}). *)

val attach : t -> conn:int -> flow_hash:int -> worker:int -> int option
(** Install [conn] (owned by [worker]) into the sockmap under its
    masked flow hash; returns the key, or [None] when already attached
    or — in strict mode — when the slot carries another connection
    (counted in [collisions]).  Without strict mode a collision still
    returns the key and records the attachment {e as if} it succeeded,
    modelling userspace that does not check its map updates. *)

val decide :
  t -> conn:int -> flow_hash:int -> dst_port:int -> bytes:int -> decision
(** Run the redirect program for one [bytes]-sized chunk of [conn].
    Strict mode falls back whenever the slot entry's connection id
    differs from [conn].  Accounts program and splice cycles in
    {!stats}. *)

val teardown : t -> conn:int -> (int * int) option
(** Remove [conn]'s entry; returns [(key, worker)] as userspace
    recorded them, [None] if not attached.  On a {!set_desynced}
    worker the userspace record is dropped but the kernel-side slot
    survives — the lost [sock_delete] the fault class injects. *)

val teardown_worker : t -> worker:int -> (int * int) list
(** Tear down every attachment recorded against [worker] (isolate /
    restart sweeps); returns [(conn, key)] per entry removed. *)

val is_attached : t -> conn:int -> bool
val attached : t -> int
(** Live attachments in the userspace view. *)

val slots : t -> int
(** Sockmap capacity after power-of-two rounding. *)

val key_of : t -> flow_hash:int -> int
(** The slot a flow hash masks to. *)

val strict : t -> bool
val set_strict : t -> bool -> unit
(** Toggle the userspace-directed verification (conn-id re-check and
    attach-outcome check).  Disabling it is only useful to let the
    [splice_desync] fault actually misdeliver, so the monitors can be
    shown to catch it. *)

val set_desynced : t -> worker:int -> bool -> unit
(** While set, sockmap deletes targeting [worker] are silently lost
    (the [splice_desync] fault class). *)

val stats : t -> stats

val residual_checks : t -> int
(** Runtime checks the verifier could not discharge on the attached
    program — 0 by construction (see {!create}). *)

val verified : t -> Kernel.Ebpf_vm.verified
(** The attached program's certificate, for inspection in tests. *)
