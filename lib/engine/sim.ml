(* Discrete-event simulation driver, backed by the hierarchical
   timing wheel in [Wheel].  The wheel owns ordering, cancellation and
   storage; this layer owns the virtual clock, the trace timestamp,
   the stop flag and the fired-event counter.

   The wheel reproduces the retired binary heap's exact (time, seq)
   firing order — the golden-trace conformance harness depends on it,
   and test/test_engine.ml proves it differentially against
   [Ref_heap] — while making [cancel] O(1) (the action closure is
   dropped immediately, where the heap leaked it until drain) and
   [pending_count] O(1) (a live counter, where the heap scanned every
   slot including tombstones). *)

type handle = Wheel.entry

type t = {
  wheel : Wheel.t;
  mutable clock : Sim_time.t;
  mutable seq : int;
  mutable stopping : bool;
  mutable fired : int;
  mutable shard : int;
}

let create () =
  {
    wheel = Wheel.create ();
    clock = 0;
    seq = 0;
    stopping = false;
    fired = 0;
    shard = 0;
  }

let now t = t.clock
let shard_id t = t.shard
let set_shard t id = t.shard <- id

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at=%d is before now=%d" at t.clock);
  let seq = t.seq in
  t.seq <- seq + 1;
  Wheel.add t.wheel ~time:at ~seq action

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(Sim_time.add t.clock delay) action

let cancel t ev = Wheel.cancel t.wheel ev
let is_pending _t ev = Wheel.is_live ev
let pending_count t = Wheel.live_count t.wheel
let occupancy t = Wheel.stored_count t.wheel

let fire t time action =
  t.clock <- time;
  Trace.set_now time;
  t.fired <- t.fired + 1;
  action ()

let step t =
  match Wheel.next_before t.wheel ~limit:max_int with
  | None -> false
  | Some (time, _seq, action) ->
    fire t time action;
    true

let run t =
  t.stopping <- false;
  while (not t.stopping) && step t do
    ()
  done

let run_until t ~limit =
  t.stopping <- false;
  let continue = ref true in
  while !continue && not t.stopping do
    match Wheel.next_before t.wheel ~limit with
    | None -> continue := false
    | Some (time, _seq, action) -> fire t time action
  done;
  if t.clock < limit then begin
    t.clock <- limit;
    Trace.set_now limit
  end

let stop t = t.stopping <- true
let events_fired t = t.fired
