(** Discrete-event simulation driver.

    All subsystems (the TCP model, epoll, workers, workload generators,
    probers) run as callbacks scheduled on one of these simulators.
    Events at equal timestamps fire in scheduling order (a monotone
    sequence number breaks ties), which makes every run deterministic.

    The queue behind this interface is the hierarchical timing wheel
    of {!Wheel}: amortised O(1) schedule and extraction, O(1) {!cancel}
    that drops the action closure immediately, and O(1)
    {!pending_count}.  The retired binary-heap engine survives as
    {!Ref_heap} for differential tests and the scheduler benchmarks. *)

type t

type handle
(** Names a scheduled event so it can be cancelled (e.g. an epoll_wait
    timeout that is preempted by an I/O event). *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current virtual time. *)

val shard_id : t -> int
(** Logical-shard tag of this simulator: [0] for a standalone
    simulator (the default), the owning {!Shard}'s id when the
    simulator is one logical process of a sharded cluster run.  Purely
    a label — it feeds the deterministic [(time, shard, seq)] merge
    order of per-shard traces. *)

val set_shard : t -> int -> unit

val schedule : t -> at:Sim_time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] when virtual time reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:Sim_time.t -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f].
    @raise Invalid_argument if [delay] is negative. *)

val cancel : t -> handle -> unit
(** Cancel a pending event in O(1), releasing its action closure
    immediately.  Cancelling an already-fired or already-cancelled
    event is a no-op. *)

val is_pending : t -> handle -> bool

val pending_count : t -> int
(** Number of live (not cancelled, not fired) events — O(1). *)

val occupancy : t -> int
(** Physical queue entries held, including cancelled entries whose
    slot has not been reclaimed yet; compaction keeps this bounded by
    [2 * pending_count + O(1)].  Exposed for the cancellation-leak
    regression tests. *)

val step : t -> bool
(** Fire the earliest pending event.  Returns [false] when the queue is
    empty. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> limit:Sim_time.t -> unit
(** Run events with timestamp [<= limit], then advance the clock to
    [limit].  Events scheduled beyond [limit] stay pending. *)

val stop : t -> unit
(** Request that [run] / [run_until] return after the current event. *)

val events_fired : t -> int
(** Total events executed so far (a cheap progress metric for tests). *)
