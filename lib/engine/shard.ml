type message = {
  at : Sim_time.t;
  src : int;
  dst : int;
  seq : int;
  action : unit -> unit;
}

type t = {
  id : int;
  sim : Sim.t;
  (* [None] on the control shard: it keeps the ambient recorder
     context so caller-installed sinks keep seeing control events. *)
  trace : Trace.state option;
  ring : Trace.Ring.t option;
  mutable outbox : message list; (* reversed: most recent first *)
  mutable msg_seq : int;
}

let create ~id ?trace_capacity () =
  let sim = Sim.create () in
  Sim.set_shard sim id;
  let ring = Option.map (fun capacity -> Trace.Ring.create ~capacity) trace_capacity in
  let sink = Option.map Trace.ring_sink ring in
  { id; sim; trace = Some (Trace.make_state sink); ring; outbox = []; msg_seq = 0 }

let control ~sim = { id = 0; sim; trace = None; ring = None; outbox = []; msg_seq = 0 }

let id t = t.id
let sim t = t.sim

let post t ~dst ~at action =
  let seq = t.msg_seq in
  t.msg_seq <- seq + 1;
  t.outbox <- { at; src = t.id; dst; seq; action } :: t.outbox

let drain_outbox t =
  let msgs = List.rev t.outbox in
  t.outbox <- [];
  msgs

let deliver t msg = ignore (Sim.schedule t.sim ~at:msg.at msg.action)

let with_context t f =
  match t.trace with
  | None -> f ()
  | Some state ->
    let saved = Trace.swap_state state in
    Fun.protect ~finally:(fun () -> ignore (Trace.swap_state saved)) f

let run_to t ~limit =
  if t.trace = None then
    invalid_arg "Shard.run_to: the control shard is driven by its caller";
  with_context t (fun () -> Sim.run_until t.sim ~limit)

let records t =
  match t.ring with None -> [] | Some ring -> Trace.Ring.records ring

let dropped_records t =
  match t.ring with None -> 0 | Some ring -> Trace.Ring.dropped ring
