(* Chase–Lev dynamic circular work-stealing deque ("Dynamic Circular
   Work-Stealing Deque", SPAA 2005), specialised to OCaml 5 atomics.

   Layout: [top] and [bottom] are monotonically growing virtual
   indices into a circular buffer of capacity [size] (a power of two);
   element i lives at [arr.(i land (size - 1))].  The owner works at
   [bottom], thieves compete at [top] with a CAS.

   The interleaving-level arguments for why each race is benign used
   to live here as prose; they are now machine-checked.  The code is a
   functor over {!Mcheck_shim.PRIM}, and the [deque_*] harnesses in
   [Mcheck.Scenarios] enumerate all non-equivalent interleavings of
   the hairy schedules (owner-vs-thief last element, grow under
   concurrent steal, stolen-slot clearing) with the DPOR explorer,
   checking exactly-once delivery and pinning the expected benign
   race set.  See DESIGN.md "Memory model & interleaving guarantees"
   for the claim-to-harness map.  The short version:

   - A thief reads the slot at [t] {e before} its CAS on [top]; the
     value is only used when the CAS succeeds, which proves the slot
     could not have been recycled or popped.

   - [grow] publishes a fully copied buffer with a single atomic
     store; a thief sees either array, both holding every unclaimed
     element.

   - The "last element" tie between [pop] and a thief is resolved by
     both sides CASing [top]; exactly one wins.

   - The owner clears a slot (writes [None]) only when [top] has
     already moved past it, so a thief that reads the cleared slot is
     guaranteed to fail its CAS and discard the value.

   Reclamation: thieves never write [arr], so a stolen slot keeps its
   [Some closure] alive until the owner reclaims it.  The owner clears
   dead slots in [top .. bottom) order lazily — the last-element pop
   clears through [top], and an empty [pop] sweeps every slot stolen
   since the previous sweep — so claimed closures are released no
   later than the owner's next empty pop (in the {!Coordinator} pool:
   the end of the round).  [grow] copies only live slots, dropping the
   old buffer and any dead entries with it. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> ?check_owner:bool -> ?name:string -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val size : 'a t -> int
end

module Make (P : Mcheck_shim.PRIM) = struct
  type 'a buffer = { mask : int; arr : 'a option P.Array.t }

  type 'a t = {
    top : int P.Atomic.t;
    bottom : int P.Atomic.t;
    buf : 'a buffer P.Atomic.t;
    owner : int; (* thread that created the deque; sole pusher/popper *)
    check_owner : bool;
    cleaned : int P.Plain.t;
    (* Owner-private: every virtual index below [cleaned] has had its
       slot reset to [None] (or its physical slot reused by a later
       push).  Only the owner reads or writes it. *)
    name : string;
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create ?(capacity = 64) ?(check_owner = true) ?(name = "deque") () =
    if capacity <= 0 then
      invalid_arg "Task_deque.create: capacity must be positive";
    let cap = pow2 capacity 1 in
    {
      top = P.Atomic.make ~name:(name ^ ".top") 0;
      bottom = P.Atomic.make ~name:(name ^ ".bottom") 0;
      buf =
        P.Atomic.make ~name:(name ^ ".buf")
          { mask = cap - 1; arr = P.Array.make ~name:(name ^ ".arr") cap None };
      owner = P.Thread.self_id ();
      check_owner;
      cleaned = P.Plain.make ~name:(name ^ ".cleaned") 0;
      name;
    }

  (* [push]/[pop] are owner-only by contract (the Coordinator pool
     discipline: the caller alone owns every deque; workers steal).
     The assertion turns a silent two-owner corruption into an
     immediate failure; [check_owner:false] is for model-check
     harnesses that deliberately re-introduce the two-owner bug. *)
  let assert_owner t =
    if t.check_owner && P.Thread.self_id () <> t.owner then
      invalid_arg
        (Printf.sprintf
           "Task_deque(%s): push/pop from thread %d but owner is %d \
            (single-owner contract)"
           t.name (P.Thread.self_id ()) t.owner)

  let size t = max 0 (P.Atomic.get t.bottom - P.Atomic.get t.top)

  let grow t ~top ~bottom =
    let old = P.Atomic.get t.buf in
    let cap = 2 * (old.mask + 1) in
    let arr = P.Array.make ~name:(t.name ^ ".arr") cap None in
    for i = top to bottom - 1 do
      P.Array.set arr (i land (cap - 1)) (P.Array.get old.arr (i land old.mask))
    done;
    P.Atomic.set t.buf { mask = cap - 1; arr };
    (* The fresh buffer holds live slots only: everything below [top]
       is already reclaimed. *)
    P.Plain.set t.cleaned top

  (* Owner-side reclamation of stolen slots: clear every dead slot in
     [cleaned .. upto).  Safe because the caller only passes
     [upto <= top]: a thief still holding a stale top index [i < top]
     may read the [None] we write, but its CAS on [top] is then
     guaranteed to fail, so the value is never used.  Clamped to one
     buffer turn — older physical slots were already overwritten by
     the pushes that reused them. *)
  let sweep_stolen t (buf : _ buffer) ~upto =
    let c = P.Plain.get t.cleaned in
    if c < upto then begin
      let start = if upto - c > buf.mask + 1 then upto - buf.mask - 1 else c in
      for i = start to upto - 1 do
        P.Array.set buf.arr (i land buf.mask) None
      done;
      P.Plain.set t.cleaned upto
    end

  let push t x =
    assert_owner t;
    let b = P.Atomic.get t.bottom in
    let tp = P.Atomic.get t.top in
    let buf = P.Atomic.get t.buf in
    let buf =
      if b - tp > buf.mask then begin
        grow t ~top:tp ~bottom:b;
        P.Atomic.get t.buf
      end
      else buf
    in
    P.Array.set buf.arr (b land buf.mask) (Some x);
    P.Atomic.set t.bottom (b + 1)

  let pop t =
    assert_owner t;
    let b = P.Atomic.get t.bottom - 1 in
    P.Atomic.set t.bottom b;
    let tp = P.Atomic.get t.top in
    if b < tp then begin
      (* empty: restore the canonical empty state and reclaim every
         slot stolen since the last sweep *)
      P.Atomic.set t.bottom tp;
      sweep_stolen t (P.Atomic.get t.buf) ~upto:tp;
      None
    end
    else begin
      let buf = P.Atomic.get t.buf in
      let x = P.Array.get buf.arr (b land buf.mask) in
      if b > tp then begin
        P.Array.set buf.arr (b land buf.mask) None;
        x
      end
      else begin
        (* b = tp: last element — race any thief for it via [top] *)
        let won = P.Atomic.compare_and_set t.top tp (tp + 1) in
        P.Atomic.set t.bottom (tp + 1);
        (* Win or lose, [top] is now [tp + 1]: the slot at [tp] is
           dead either way (we hold the value; or the winning thief
           already read it before its CAS), so reclaim through it. *)
        sweep_stolen t buf ~upto:(tp + 1);
        if won then x else None
      end
    end

  let rec steal t =
    let tp = P.Atomic.get t.top in
    let b = P.Atomic.get t.bottom in
    if tp >= b then None
    else begin
      let buf = P.Atomic.get t.buf in
      let x = P.Array.get buf.arr (tp land buf.mask) in
      if P.Atomic.compare_and_set t.top tp (tp + 1) then x
      else begin
        P.Thread.cpu_relax ();
        steal t
      end
    end
end

include Make (Mcheck_shim.Real)
