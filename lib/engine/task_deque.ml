(* Chase–Lev dynamic circular work-stealing deque ("Dynamic Circular
   Work-Stealing Deque", SPAA 2005), specialised to OCaml 5 atomics.

   Layout: [top] and [bottom] are monotonically growing virtual
   indices into a circular buffer of capacity [size] (a power of two);
   element i lives at [arr.(i land (size - 1))].  The owner works at
   [bottom], thieves compete at [top] with a CAS.

   Why the races are benign:

   - A thief reads the slot at [t] {e before} its CAS on [top].  The
     read value is only used when the CAS succeeds, and success means
     [top] was still [t] at that point — so the owner cannot have
     recycled slot [t land mask] for a later push (that would require
     [bottom - t >= size], which the capacity check forbids for the
     buffer the thief read) nor popped it (popping the last element
     moves [top] by CAS, which would make the thief's CAS fail).

   - The owner grows the buffer by copying [top..bottom) into a fresh
     array and publishing it with an [Atomic.set] on [buf]; a thief's
     [Atomic.get buf] therefore sees either the old array (still
     holding every unclaimed element) or the fully copied new one.

   - The "last element" tie between the owner's [pop] and a thief is
     resolved by both sides CASing [top]; exactly one wins. *)

type 'a buffer = { mask : int; arr : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Task_deque.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make { mask = cap - 1; arr = Array.make cap None };
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let grow t ~top ~bottom =
  let old = Atomic.get t.buf in
  let cap = 2 * (old.mask + 1) in
  let arr = Array.make cap None in
  for i = top to bottom - 1 do
    arr.(i land (cap - 1)) <- old.arr.(i land old.mask)
  done;
  Atomic.set t.buf { mask = cap - 1; arr }

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf =
    if b - tp > buf.mask then begin
      grow t ~top:tp ~bottom:b;
      Atomic.get t.buf
    end
    else buf
  in
  buf.arr.(b land buf.mask) <- Some x;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty: restore the canonical empty state *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.arr.(b land buf.mask) in
    if b > tp then begin
      buf.arr.(b land buf.mask) <- None;
      x
    end
    else begin
      (* b = tp: last element — race any thief for it via [top] *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        buf.arr.(b land buf.mask) <- None;
        x
      end
      else None
    end
  end

let rec steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.arr.(tp land buf.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then x
    else begin
      Domain.cpu_relax ();
      steal t
    end
  end
