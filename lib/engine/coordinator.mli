(** Conservative time synchronization across simulation shards.

    Classic lookahead-based parallel discrete-event simulation: all
    cross-shard interaction carries a fixed minimum latency [D] (the
    lookahead), so a round that runs every member shard from horizon
    [H - D] to [H] can never receive a message that should have fired
    inside the window it is executing — anything sent in that window
    lands strictly after [H].  The coordinator owns the rounds:

    + deliver control-plane messages posted since the last round,
      sorted by [(at, src, seq)];
    + run every member shard to the new horizon — inline on the
      calling domain, or fanned out over a {!Task_deque}-based
      work-stealing domain pool when [domains > 1];
    + collect the members' outboxes, sort globally by
      [(at, src, seq)], and deliver.

    The sort key is a function of logical shard ids and per-sender
    stamps only, so destination-side event sequence numbers — and with
    them the merged trace — do not depend on the domain count or on
    which domain ran which shard. *)

(** Historical orderings the PR 6 stress tests caught, re-seedable so
    the model-check CI gate can prove the explorer still finds them.
    Never set in production — [Pool_make] documents the effect of
    each. *)
type seeded_bug = [ `Two_owner_pop | `Count_after_push ]

(** The work-stealing domain pool that runs one round's shard tasks,
    as a functor over the concurrency shim so [Mcheck.Model] can
    enumerate its interleavings.  The production coordinator below
    uses [Pool_make (Mcheck_shim.Real)] internally.

    [`Two_owner_pop] makes workers take tasks with the owner-only
    [pop] instead of [steal] (lost or doubled tasks);
    [`Count_after_push] publishes the round's tasks before setting the
    outstanding counter (an early steal drives the counter negative
    and the round completion is lost).  Both are found as
    counterexamples by the [pool_*] harnesses in [Mcheck.Scenarios]. *)
module Pool_make (P : Mcheck_shim.PRIM) : sig
  type t

  val create : ?seeded_bug:seeded_bug -> domains:int -> unit -> t
  (** Spawn [domains - 1] worker threads; the creating thread is pool
      slot 0 and the sole owner of every deque. *)

  val run_round : t -> (unit -> unit) list -> unit
  (** Execute every task exactly once across the pool; returns only
      after the last task has completed.  Caller must be the creating
      thread.  Tasks must not spawn pool subtasks. *)

  val shutdown : t -> unit
  (** Wake parked workers and join them. *)
end

type t

val create : control:Shard.t -> domains:int -> t
(** [domains] is the total worker parallelism for member rounds,
    including the calling domain; [1] (or a single member) means fully
    inline execution with no domain ever spawned.  The pool is created
    lazily on the first parallel round. *)

val add : t -> Shard.t -> unit
(** Register a member shard.  If the coordinator has already advanced,
    the new member's clock is aligned to the current horizon first. *)

val remove : t -> int -> unit
(** Unregister the member with the given shard id.  Pending messages
    addressed to it are silently dropped at delivery time — the mail
    is abandoned along with the removed VM.  Unknown ids are a
    no-op. *)

val members : t -> Shard.t list
(** Registered members in shard-id order. *)

val find : t -> int -> Shard.t option

val horizon : t -> Sim_time.t
(** The virtual time every member has been run to. *)

val advance : t -> horizon:Sim_time.t -> unit
(** Execute one round up to [horizon] (steps 1–3 above).
    @raise Invalid_argument if [horizon] is behind the current one. *)

val shutdown : t -> unit
(** Join the pool's domains.  Idempotent; required before the process
    creates unrelated domain pools (OCaml caps live domains), so every
    harness that builds clusters in a loop must shut each one down. *)
