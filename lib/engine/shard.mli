(** One logical process (LP) of a sharded simulation.

    A shard bundles a private {!Sim} instance, a private trace-recorder
    context (optionally backed by a bounded {!Trace.Ring}), and an
    outbox of timestamped cross-shard messages.  The semantic unit is
    the {e logical} shard, never the OCaml domain: a cluster of [n]
    devices always decomposes into [n] device LPs plus one control LP,
    whatever [--shards] says, so every schedule, trace sequence number
    and message stamp is a function of the decomposition alone.  The
    domain count only decides which physical core executes
    {!run_to} — which is why the merged trace is byte-identical across
    domain counts.

    Shards never share mutable state; all interaction goes through
    {!post}ed messages that the {!Coordinator} delivers at horizon
    boundaries, sorted by [(at, src, seq)]. *)

type t

type message = {
  at : Sim_time.t;  (** virtual delivery time at the destination *)
  src : int;  (** sending shard id *)
  dst : int;  (** destination shard id *)
  seq : int;  (** per-sender monotone stamp; breaks [(at, src)] ties *)
  action : unit -> unit;  (** runs on the destination's sim at [at] *)
}

val create : id:int -> ?trace_capacity:int -> unit -> t
(** A member shard with its own fresh simulator (tagged with
    {!Sim.set_shard}[ id]) and its own recorder context.  With
    [trace_capacity] the context records into a private ring of that
    capacity (read back with {!records}); without it the shard records
    nothing. *)

val control : sim:Sim.t -> t
(** Wrap the caller's simulator as the control LP (id 0).  The control
    shard keeps the ambient recorder context — events emitted while
    control code runs go wherever the caller's {!Trace.install}
    pointed them — and is driven by the caller's own
    [Sim.run_until], never by {!run_to}. *)

val id : t -> int
val sim : t -> Sim.t

val post : t -> dst:int -> at:Sim_time.t -> (unit -> unit) -> unit
(** Append a message to this shard's outbox.  [at] must be at least
    one lookahead past the sender's current window — the coordinator
    checks nothing; senders are trusted to respect the horizon
    contract. *)

val drain_outbox : t -> message list
(** All pending outgoing messages in send order; the outbox is left
    empty. *)

val deliver : t -> message -> unit
(** Schedule [message.action] on this shard's simulator at
    [message.at].  Call only between rounds (the destination must not
    be mid-{!run_to} on another domain). *)

val run_to : t -> limit:Sim_time.t -> unit
(** Run this shard's simulator to [limit] with the shard's recorder
    context swapped in, restoring the caller's context afterwards.
    Safe to call from any domain; on the control shard it raises
    [Invalid_argument] (the caller drives the control sim). *)

val with_context : t -> (unit -> 'a) -> 'a
(** Run [f] with this shard's recorder context installed, restoring
    the previous context afterwards (even on exceptions).  Used by the
    cluster to make control-time device mutations — creation, fault
    arming — record into the device's own trace stream. *)

val records : t -> Trace.record list
(** Retained trace records, oldest first ([[]] without a ring). *)

val dropped_records : t -> int
(** Records overwritten because the ring was full ([0] without a
    ring) — lets callers detect a truncated merge. *)
