(** Hierarchical timing wheel: the priority queue behind {!Sim}.

    A hashed hierarchy of {e levels}, each an array of [32] slots.
    Level [l] has tick granularity [32{^l}] ns, so ten levels cover
    [2{^50}] ns (about 13 days of virtual time) before the {e spill
    list} — a sorted overflow for the far future — takes over.

    Placement uses the prefix rule: an entry lives at the lowest level
    [l] whose 5-bit time digit differs from the wheel clock's, in the
    slot named by that digit.  Two consequences make the wheel both
    fast and exactly ordered:

    - every occupied slot is at or ahead of the level's cursor, so the
      earliest pending entry is always in the {e lowest} non-empty
      level and advancing never scans empty regions tick by tick;
    - a level-0 slot holds entries of exactly one timestamp, so firing
      order within a tick reduces to sorting that one slot by sequence
      number — the wheel reproduces the binary heap's [(time, seq)]
      order bit for bit (see the differential suite in
      [test/test_engine.ml]).

    Each entry cascades down at most once per level over its lifetime,
    so [add]/[next_before] are amortised O(1).

    Cancellation is O(1) and {e releases the action closure
    immediately} ([cancel] nulls the entry's action); a cancelled
    entry's empty carcass stays slotted until its tick is reached or a
    compaction sweep — triggered when tombstones outnumber live
    entries — reclaims it, so storage is bounded by twice the live
    count (plus a small constant). *)

type t

type entry
(** Names a scheduled action so it can be cancelled. *)

val create : unit -> t

val add : t -> time:int -> seq:int -> (unit -> unit) -> entry
(** [add t ~time ~seq f] registers [f] to be returned by
    {!next_before} once the wheel reaches [time]; [(time, seq)] must
    be unique and [seq] monotone across live entries for the firing
    order to be deterministic.
    @raise Invalid_argument if [time] is before the wheel clock. *)

val cancel : t -> entry -> unit
(** O(1): marks the entry dead and drops its closure.  Cancelling an
    already-fired or already-cancelled entry is a no-op. *)

val is_live : entry -> bool
(** True until the entry is fired or cancelled. *)

val live_count : t -> int
(** Number of live entries — O(1). *)

val stored_count : t -> int
(** Physical entries held, including not-yet-reclaimed tombstones;
    bounded by [2 * live_count + O(1)] thanks to compaction.  Exposed
    for the cancellation-leak regression tests. *)

val next_before : t -> limit:int -> (int * int * (unit -> unit)) option
(** Extract the earliest live entry with [time <= limit] as
    [(time, seq, action)], marking it fired.  Returns [None] — and
    leaves every entry with [time > limit] pending — otherwise.  The
    wheel clock never advances past [min limit (earliest pending)],
    so later [add]s at any [time >= limit] remain valid. *)
