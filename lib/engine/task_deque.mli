(** Work-stealing task deque (Chase–Lev), SPMC.

    One owner domain pushes and pops at the bottom (LIFO); any number
    of thief domains steal from the top (FIFO).  The steal path is
    lock-free: a single [Atomic.compare_and_set] on the top index
    claims an element, and losers retry.  The buffer is a circular
    array that the owner grows on demand, so pushes never block and
    never fail.

    This is the intra-round task layer of {!Coordinator}: each worker
    domain owns one deque of shard-run tasks, pops its own work and
    steals from its siblings when it runs dry, so one hot shard's
    event storm does not serialize the whole round behind a single
    run queue.

    Every element pushed is returned by exactly one successful [pop]
    or [steal] — the multi-domain stress test and the model-based
    qcheck differential in [test/test_engine.ml] pin this contract. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty deque.  [capacity] (default 64, rounded up to a power of
    two) is only the initial buffer size; the owner grows it as
    needed. *)

val push : 'a t -> 'a -> unit
(** Owner only: add an element at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed remaining element. *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest remaining element, or [None] if the
    deque is (momentarily) empty.  Lock-free; retries internally on
    CAS conflicts with other thieves or the owner's race for the last
    element. *)

val size : 'a t -> int
(** Snapshot of the current element count — exact when quiescent, a
    momentary approximation under concurrency.  For tests and
    monitoring. *)
