(** Work-stealing task deque (Chase–Lev), SPMC.

    One owner thread pushes and pops at the bottom (LIFO); any number
    of thief threads steal from the top (FIFO).  The steal path is
    lock-free: a single compare-and-set on the top index claims an
    element, and losers retry.  The buffer is a circular array that
    the owner grows on demand, so pushes never block and never fail.

    This is the intra-round task layer of {!Coordinator}: each worker
    domain owns one deque of shard-run tasks, pops its own work and
    steals from its siblings when it runs dry, so one hot shard's
    event storm does not serialize the whole round behind a single
    run queue.

    Every element pushed is returned by exactly one successful [pop]
    or [steal].  That contract is pinned three ways: the model-based
    qcheck differential and multi-domain stress in
    [test/test_engine.ml], and — exhaustively, over every
    non-equivalent interleaving of the bounded schedules — the
    [deque_*] harnesses in [Mcheck.Scenarios] (run by
    [hermes_sim mcheck]).  The implementation is a functor over
    {!Mcheck_shim.PRIM}; the default instance below runs on the real
    primitives at unchanged cost. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> ?check_owner:bool -> ?name:string -> unit -> 'a t
  (** An empty deque owned by the calling thread.  [capacity]
      (default 64, rounded up to a power of two) is only the initial
      buffer size; the owner grows it as needed.  [check_owner]
      (default [true]) makes [push]/[pop] raise [Invalid_argument]
      when called from any thread other than the creator — the
      single-owner contract — and exists only so model-check
      harnesses can re-introduce the two-owner bug deliberately.
      [name] labels the deque's locations in model-checker
      counterexamples. *)

  val push : 'a t -> 'a -> unit
  (** Owner only: add an element at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner only: take the most recently pushed remaining element.
      An empty pop also reclaims (clears) every slot stolen since the
      last reclamation, releasing the stolen elements for GC. *)

  val steal : 'a t -> 'a option
  (** Any thread: take the oldest remaining element, or [None] if the
      deque is (momentarily) empty.  Lock-free; retries internally on
      CAS conflicts with other thieves or the owner's race for the
      last element. *)

  val size : 'a t -> int
  (** Element-count estimate: [bottom - top] from two independent
      atomic reads.  {b Only quiescently accurate} — exact when no
      push/pop/steal is in flight, otherwise a momentary approximation
      that can lag either index.  It is however never an
      over-estimate of outstanding work against monotone counters
      sampled around it: with [claimed] read before [size] and
      [pushed] read after (claims counted after they complete, pushes
      counted before they start), [size <= pushed - claimed] holds
      under full concurrency — the [size quiescent bound] qcheck test
      in [test/test_mcheck.ml] pins this.  For tests and monitoring
      only; never use it to decide ownership or emptiness. *)
end

include S

(** [Make (P)] builds the deque over instrumented primitives; the
    model-check harnesses instantiate it with the DPOR scheduler's
    shim.  [Make (Mcheck_shim.Real)] is exactly the default instance
    above. *)
module Make (P : Mcheck_shim.PRIM) : S
