(** The retired binary-heap event queue, kept as a reference.

    This is the engine {!Sim} shipped before the timing-wheel rewrite,
    preserved for two jobs:

    - the qcheck differential suite ([test/test_engine.ml]) replays
      random schedule/cancel/run_until programs against both engines
      and demands identical [(time, seq)] firing order; and
    - the scheduler benchmarks ([bench/main.exe]) measure the wheel's
      speedup against this baseline {e in the same run}, which is what
      [BENCH_PR3.json]'s regression gate compares.

    It deliberately retains the old cancellation behaviour — [cancel]
    only flips a flag, so the action closure and heap slot leak until
    the entry is drained and [pending_count] is O(n) — because that
    cost is exactly what the benchmarks quantify.  The one fix over
    the shipped version: [run_until] skims cancelled entries off the
    heap top before comparing against [limit], so it can no longer
    fire an event beyond [limit] when tombstones head the queue (the
    wheel never had that failure mode, and the differential suite
    requires agreement). *)

type t

type handle

val create : unit -> t
val now : t -> Sim_time.t
val schedule : t -> at:Sim_time.t -> (unit -> unit) -> handle
val schedule_after : t -> delay:Sim_time.t -> (unit -> unit) -> handle
val cancel : t -> handle -> unit
val is_pending : t -> handle -> bool

val pending_count : t -> int
(** O(n) over the heap, dead entries included — the cost the wheel's
    live counter removes. *)

val step : t -> bool
val run : t -> unit
val run_until : t -> limit:Sim_time.t -> unit
val stop : t -> unit
val events_fired : t -> int

val occupancy : t -> int
(** Physical heap entries, tombstones included. *)
