(* Conservative-synchronization coordinator: horizon rounds over the
   member shards, with an optional work-stealing domain pool for the
   run-members step.

   Pool discipline: the calling domain is the sole Chase-Lev owner of
   every deque — it alone pushes (round-robin, to spread thieves) and
   only pops its own slot 0; workers take {e every} task via [steal],
   which is safe against a concurrent owner push by design.  This
   matters because rounds overlap at the edges: a worker woken for
   round R can still be sweeping the deques when the caller starts
   pushing round R+1, and a worker-side [pop] there would be a
   two-owner race (lost or doubled tasks).  For the same reason the
   outstanding counter is set {e before} the first push — an
   early-stolen task must have a count to decrement.

   Both rules are now machine-checked, not just argued: the pool is a
   functor over {!Mcheck_shim.PRIM}, and the [pool_*] harnesses in
   [Mcheck.Scenarios] explore every non-equivalent interleaving of a
   bounded round (round-completion signal vs [run_round]'s wait,
   shutdown broadcast vs parked workers).  [?seeded_bug] deliberately
   re-introduces the two historical orderings that PR 6's stress
   tests caught — worker-side [pop] and count-after-push — so CI can
   prove the checker still finds them ([hermes_sim mcheck --seeded]).

   After its own sweep the caller {e blocks} on a second condition
   until the outstanding counter hits zero — never busy-waits.  On an
   oversubscribed machine (domains > cores) a preempted worker can
   hold the round's last task for a full scheduler quantum; a spinning
   caller would burn exactly the CPU that worker needs, turning every
   round into a context-switch storm.  Shard tasks never spawn
   subtasks, so a worker that finds every deque empty can park for the
   next round. *)

type seeded_bug = [ `Two_owner_pop | `Count_after_push ]

module Pool_make (P : Mcheck_shim.PRIM) = struct
  module TD = Task_deque.Make (P)

  type t = {
    deques : (unit -> unit) TD.t array; (* slot 0 = caller *)
    mutable workers : P.Thread.t array;
    mutex : P.Mutex.t;
    cond : P.Condition.t;
    done_cond : P.Condition.t; (* round's last task completed *)
    round : int P.Plain.t;
    stop : bool P.Plain.t;
    remaining : int P.Atomic.t;
    bug : seeded_bug option;
  }

  let run_task p task =
    task ();
    if P.Atomic.fetch_and_add p.remaining (-1) = 1 then begin
      (* Last task of the round: wake the caller if it is parked in
         [run_round].  Taking the mutex orders this signal after the
         caller's own remaining-check-then-wait. *)
      P.Mutex.lock p.mutex;
      P.Condition.signal p.done_cond;
      P.Mutex.unlock p.mutex
    end

  (* The caller (slot 0) pops its own deque dry then steals from the
     rest; workers are pure thieves over every deque, starting at
     their slot so contention spreads.  Return when a full sweep finds
     nothing. *)
  let work p ~slot =
    let n = Array.length p.deques in
    (* Workers must never [pop]: the caller is the sole owner of every
       deque.  [`Two_owner_pop] re-introduces the historical bug for
       the model-check regression gate. *)
    let take d =
      if slot <> 0 && p.bug = Some `Two_owner_pop then TD.pop d else TD.steal d
    in
    let rec own () =
      if slot = 0 then
        match TD.pop p.deques.(0) with
        | Some task ->
          run_task p task;
          own ()
        | None -> sweep 1
      else sweep 0
    and sweep i =
      if i < n then
        match take p.deques.((slot + i) mod n) with
        | Some task ->
          run_task p task;
          own ()
        | None -> sweep (i + 1)
    in
    own ()

  let worker_loop p slot =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      P.Mutex.lock p.mutex;
      while P.Plain.get p.round = !seen && not (P.Plain.get p.stop) do
        P.Condition.wait p.cond p.mutex
      done;
      let stop = P.Plain.get p.stop in
      seen := P.Plain.get p.round;
      P.Mutex.unlock p.mutex;
      if stop then running := false else work p ~slot
    done

  let create ?seeded_bug ~domains () =
    let deques =
      Array.init domains (fun i ->
          TD.create
            ~check_owner:(seeded_bug = None)
            ~name:(Printf.sprintf "deque%d" i)
            ())
    in
    let p =
      {
        deques;
        workers = [||];
        mutex = P.Mutex.create ~name:"pool.mutex" ();
        cond = P.Condition.create ~name:"pool.round_cond" ();
        done_cond = P.Condition.create ~name:"pool.done_cond" ();
        round = P.Plain.make ~name:"pool.round" 0;
        stop = P.Plain.make ~name:"pool.stop" false;
        remaining = P.Atomic.make ~name:"pool.remaining" 0;
        bug = seeded_bug;
      }
    in
    p.workers <-
      Array.init (domains - 1) (fun i ->
          P.Thread.spawn
            ~name:(Printf.sprintf "worker%d" (i + 1))
            (fun () -> worker_loop p (i + 1)));
    p

  let run_round p tasks =
    let n = Array.length p.deques in
    let count () = P.Atomic.set p.remaining (List.length tasks) in
    let push_all () =
      List.iteri (fun i task -> TD.push p.deques.(i mod n) task) tasks
    in
    (* Count before the first push: a late worker from the previous
       round can steal a task the instant it lands.  [`Count_after_push]
       inverts the order to re-seed the lost-count bug for mcheck. *)
    (match p.bug with
    | Some `Count_after_push ->
      push_all ();
      count ()
    | _ ->
      count ();
      push_all ());
    P.Mutex.lock p.mutex;
    P.Plain.set p.round (P.Plain.get p.round + 1);
    P.Condition.broadcast p.cond;
    P.Mutex.unlock p.mutex;
    (* The caller is pool slot 0. *)
    work p ~slot:0;
    (* Every deque is dry but a worker may still be running the
       round's tail (tasks spawn no subtasks, so there is nothing left
       to help with): block until the last completion signals. *)
    P.Mutex.lock p.mutex;
    while P.Atomic.get p.remaining > 0 do
      P.Condition.wait p.done_cond p.mutex
    done;
    P.Mutex.unlock p.mutex

  let shutdown p =
    P.Mutex.lock p.mutex;
    P.Plain.set p.stop true;
    P.Condition.broadcast p.cond;
    P.Mutex.unlock p.mutex;
    Array.iter P.Thread.join p.workers
end

module Pool = Pool_make (Mcheck_shim.Real)

type t = {
  control : Shard.t;
  shards : (int, Shard.t) Hashtbl.t;
  mutable member_ids : int list; (* ascending *)
  domains : int;
  mutable pool : Pool.t option;
  mutable horizon : Sim_time.t;
  mutable stopped : bool;
}

let create ~control ~domains =
  if domains < 1 then invalid_arg "Coordinator.create: domains must be >= 1";
  {
    control;
    shards = Hashtbl.create 16;
    member_ids = [];
    domains;
    pool = None;
    horizon = 0;
    stopped = false;
  }

let add t shard =
  let id = Shard.id shard in
  if id = Shard.id t.control then
    invalid_arg "Coordinator.add: shard id collides with the control LP";
  if Hashtbl.mem t.shards id then
    invalid_arg (Printf.sprintf "Coordinator.add: duplicate shard id %d" id);
  (* A shard joining mid-run starts at the fleet's horizon, not at 0
     (no-op when the caller already aligned it before populating it). *)
  if Sim.now (Shard.sim shard) < t.horizon then Shard.run_to shard ~limit:t.horizon;
  Hashtbl.replace t.shards id shard;
  t.member_ids <- List.sort compare (id :: t.member_ids)

let remove t id =
  Hashtbl.remove t.shards id;
  t.member_ids <- List.filter (fun i -> i <> id) t.member_ids

let members t = List.map (Hashtbl.find t.shards) t.member_ids
let find t id = Hashtbl.find_opt t.shards id
let horizon t = t.horizon

let message_order (a : Shard.message) (b : Shard.message) =
  match compare a.at b.at with
  | 0 -> ( match compare a.src b.src with 0 -> compare a.seq b.seq | c -> c)
  | c -> c

let deliver_sorted t msgs =
  List.iter
    (fun (msg : Shard.message) ->
      let dst =
        if msg.dst = Shard.id t.control then Some t.control
        else Hashtbl.find_opt t.shards msg.dst
      in
      (* A missing destination was removed since the send: drop. *)
      match dst with None -> () | Some shard -> Shard.deliver shard msg)
    (List.sort message_order msgs)

let run_members t ~limit =
  let members = members t in
  let parallel = t.domains > 1 && List.length members > 1 in
  if not parallel then
    List.iter (fun shard -> Shard.run_to shard ~limit) members
  else begin
    let pool =
      match t.pool with
      | Some p -> p
      | None ->
        let p = Pool.create ~domains:t.domains () in
        t.pool <- Some p;
        p
    in
    Pool.run_round pool
      (List.map (fun shard () -> Shard.run_to shard ~limit) members)
  end

let advance t ~horizon =
  if horizon < t.horizon then
    invalid_arg
      (Printf.sprintf "Coordinator.advance: horizon %d is behind %d" horizon
         t.horizon);
  deliver_sorted t (Shard.drain_outbox t.control);
  run_members t ~limit:horizon;
  t.horizon <- horizon;
  deliver_sorted t
    (List.concat_map Shard.drain_outbox (members t))

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    match t.pool with
    | None -> ()
    | Some p ->
      t.pool <- None;
      Pool.shutdown p
  end
