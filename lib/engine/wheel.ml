(* Hierarchical timing wheel.  See wheel.mli for the design notes; the
   short version of the invariants maintained here:

   - [wt] (wheel time) is a lower bound on every pending entry's time.
   - An entry lives at level [l] iff its time, written in base-32
     digits, first differs from [wt] at digit [l]; its slot is that
     digit.  Hence every occupied slot is at or ahead of the level's
     cursor digit, the lowest non-empty level always holds the
     earliest entries, and a level-0 slot holds exactly one timestamp.
   - Advancing [wt] to a level-l slot's base keeps digits above [l]
     unchanged, so higher-level placements stay valid; the slot's
     entries then re-place strictly below [l] (each entry cascades at
     most once per level over its lifetime).
   - The spill list keeps entries whose time differs from [wt] above
     the top level, sorted by (time, seq); its head is the global
     minimum whenever the wheel proper is empty. *)

let slot_bits = 5
let slots = 32
let slot_mask = slots - 1
let levels = 10
let horizon_bits = slot_bits * levels (* 2^50 ns ≈ 13 days *)

type entry = {
  time : int;
  seq : int;
  mutable action : (unit -> unit) option;
      (* [None] once fired or cancelled: the closure is dropped the
         moment the entry dies, never when its slot drains. *)
}

type t = {
  mutable wt : int; (* wheel time *)
  slot : entry list array array; (* slot.(level).(index) *)
  occ : int array; (* per-level occupancy bitmap *)
  mutable spill : entry list; (* ascending (time, seq) *)
  mutable cur : entry list; (* extracted tick, ascending seq *)
  mutable live : int;
  mutable stored : int; (* physical entries, incl. tombstones *)
}

let create () =
  {
    wt = 0;
    slot = Array.init levels (fun _ -> Array.make slots []);
    occ = Array.make levels 0;
    spill = [];
    cur = [];
    live = 0;
    stored = 0;
  }

let live_count t = t.live
let stored_count t = t.stored
let is_live e = e.action <> None
let alive e = e.action <> None

(* Index of the lowest set bit via 32-bit De Bruijn multiplication. *)
let ctz_table =
  [|  0;  1; 28;  2; 29; 14; 24;  3; 30; 22; 20; 15; 25; 17;  4;  8;
     31; 27; 13; 23; 21; 19; 16;  7; 26; 12; 18;  6; 11;  5; 10;  9 |]

let ctz x = ctz_table.(((x land -x) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* Highest differing base-32 digit of [x = time lxor wt], i.e. the
   level an entry belongs to ([x] must be non-zero). *)
let level_of x =
  let l = ref 0 and v = ref (x lsr slot_bits) in
  while !v <> 0 do
    incr l;
    v := !v lsr slot_bits
  done;
  !l

let spill_insert e l =
  let rec go acc = function
    | [] -> List.rev_append acc [ e ]
    | f :: rest ->
      if e.time < f.time || (e.time = f.time && e.seq < f.seq) then
        List.rev_append acc (e :: f :: rest)
      else go (f :: acc) rest
  in
  go [] l

(* Slot an (already-counted) entry relative to the current [wt]. *)
let place t e =
  let x = e.time lxor t.wt in
  let l = if x = 0 then 0 else level_of x in
  if l >= levels then t.spill <- spill_insert e t.spill
  else begin
    let s = (e.time lsr (l * slot_bits)) land slot_mask in
    t.slot.(l).(s) <- e :: t.slot.(l).(s);
    t.occ.(l) <- t.occ.(l) lor (1 lsl s)
  end

let add t ~time ~seq action =
  if time < t.wt then invalid_arg "Wheel.add: time before wheel clock";
  let e = { time; seq; action = Some action } in
  place t e;
  t.live <- t.live + 1;
  t.stored <- t.stored + 1;
  e

(* Sweep every slot, the spill list and the extracted tick, dropping
   dead entries.  O(stored + levels*slots); triggered only when
   tombstones outnumber live entries, so amortised O(1) per cancel. *)
let compact t =
  for l = 0 to levels - 1 do
    if t.occ.(l) <> 0 then begin
      let row = t.slot.(l) in
      let occ = ref 0 in
      for s = 0 to slots - 1 do
        match row.(s) with
        | [] -> ()
        | es ->
          let es = List.filter alive es in
          row.(s) <- es;
          if es <> [] then occ := !occ lor (1 lsl s)
      done;
      t.occ.(l) <- !occ
    end
  done;
  t.spill <- List.filter alive t.spill;
  t.cur <- List.filter alive t.cur;
  t.stored <- t.live

let cancel t e =
  match e.action with
  | None -> ()
  | Some _ ->
    e.action <- None;
    t.live <- t.live - 1;
    if t.stored >= 64 && t.stored - t.live > t.stored / 2 then compact t

let by_seq a b = Int.compare a.seq b.seq

let rec next_before t ~limit =
  match t.cur with
  | e :: rest -> (
    match e.action with
    | None ->
      (* tombstone: reclaim and keep scanning *)
      t.cur <- rest;
      t.stored <- t.stored - 1;
      next_before t ~limit
    | Some a ->
      if e.time > limit then None
      else begin
        t.cur <- rest;
        t.stored <- t.stored - 1;
        e.action <- None;
        t.live <- t.live - 1;
        Some (e.time, e.seq, a)
      end)
  | [] -> advance t ~limit

and advance t ~limit =
  let l = ref 0 in
  while !l < levels && t.occ.(!l) = 0 do
    incr l
  done;
  if !l = levels then refill t ~limit
  else begin
    let l = !l in
    let s = ctz t.occ.(l) in
    if l = 0 then begin
      (* A level-0 slot is a single tick: extract it as the current
         batch, ordered by sequence number. *)
      let time = ((t.wt lsr slot_bits) lsl slot_bits) lor s in
      if time > limit then None
      else begin
        t.wt <- time;
        t.occ.(0) <- t.occ.(0) land lnot (1 lsl s);
        t.cur <- List.sort by_seq t.slot.(0).(s);
        t.slot.(0).(s) <- [];
        next_before t ~limit
      end
    end
    else begin
      let shift = (l + 1) * slot_bits in
      let base = ((t.wt lsr shift) lsl shift) lor (s lsl (l * slot_bits)) in
      if base > limit then None
      else begin
        t.wt <- base;
        t.occ.(l) <- t.occ.(l) land lnot (1 lsl s);
        let es = t.slot.(l).(s) in
        t.slot.(l).(s) <- [];
        (* Cascade: live entries re-place strictly below level l;
           tombstones are reclaimed on the way down. *)
        List.iter
          (fun e -> if alive e then place t e else t.stored <- t.stored - 1)
          es;
        next_before t ~limit
      end
    end
  end

and refill t ~limit =
  match t.spill with
  | [] -> None
  | e :: _ ->
    if e.time > limit then None
    else begin
      (* The wheel proper is empty and the spill head is the global
         minimum: jump to its window and pull in every spill entry
         sharing the wheel's new 13-day horizon. *)
      t.wt <- e.time;
      let top = t.wt lsr horizon_bits in
      let rec take = function
        | f :: rest when f.time lsr horizon_bits = top ->
          if alive f then place t f else t.stored <- t.stored - 1;
          take rest
        | rest -> rest
      in
      t.spill <- take t.spill;
      next_before t ~limit
    end
