(* The pre-wheel binary-heap engine, kept as the reference baseline
   for the differential tests and the scheduler benchmarks.  See
   ref_heap.mli for why the leaky [cancel] is intentional. *)

type event = {
  time : Sim_time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

(* Array-based binary min-heap ordered by (time, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : Sim_time.t;
  mutable seq : int;
  mutable stopping : bool;
  mutable fired : int;
}

let dummy = { time = 0; seq = -1; action = (fun () -> ()); cancelled = true }

let create () =
  { heap = Array.make 256 dummy; size = 0; clock = 0; seq = 0; stopping = false; fired = 0 }

let now t = t.clock

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t ev =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest
      end
    done;
    Some top
  end

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at=%d is before now=%d" at t.clock);
  let ev = { time = at; seq = t.seq; action; cancelled = false } in
  t.seq <- t.seq + 1;
  push t ev;
  ev

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(Sim_time.add t.clock delay) action

let cancel _t ev = ev.cancelled <- true
let is_pending _t ev = not ev.cancelled

let pending_count t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr n
  done;
  !n

let occupancy t = t.size

let step t =
  let rec next () =
    match pop t with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
      t.clock <- ev.time;
      ev.cancelled <- true;
      t.fired <- t.fired + 1;
      ev.action ();
      true
  in
  next ()

let run t =
  t.stopping <- false;
  while (not t.stopping) && step t do
    ()
  done

(* Skim cancelled tombstones off the top so the reported time is that
   of a live event — without this, run_until could fire past [limit]
   when dead entries headed the heap. *)
let rec peek_time t =
  if t.size = 0 then None
  else if t.heap.(0).cancelled then begin
    ignore (pop t);
    peek_time t
  end
  else Some t.heap.(0).time

let run_until t ~limit =
  t.stopping <- false;
  let continue = ref true in
  while !continue && not t.stopping do
    match peek_time t with
    | Some time when time <= limit -> if not (step t) then continue := false
    | _ -> continue := false
  done;
  if t.clock < limit then t.clock <- limit

let stop t = t.stopping <- true
let events_fired t = t.fired
