(** The four traffic cases of Table 3.

    The paper characterizes production traffic along two axes —
    connections-per-second and average LB processing time — and
    evaluates the three dispatch modes in each quadrant:

    - Case 1: high CPS, low processing time (stress tests, spikes)
    - Case 2: high CPS, high processing time (spikes of heavy work,
      e.g. compression)
    - Case 3: low CPS, low processing time (finance/chat long-lived
      connections)
    - Case 4: low CPS, high processing time (web services: SSL
      handshakes, regex routing)

    Profiles are parameterized by the worker count so the light load
    lands at a comparable utilization on any device size; "medium" and
    "heavy" replay the same traffic at 2x and 3x (§6.2). *)

type case = Case1 | Case2 | Case3 | Case4

val all : case list
val name : case -> string
val description : case -> string
val cps_class : case -> [ `High | `Low ]
val processing_class : case -> [ `High | `Low ]

(** {1 Splice workload axis}

    The splice fast path (PR 9) is priced by bytes, not requests, so
    its evaluation axis is the bytes-per-connection ratio rather than
    Table 3's CPS/processing quadrants. *)

type splice_axis =
  | Short_rpc  (** a handful of sub-KB exchanges per connection *)
  | Long_streaming  (** hundreds of 64 KiB chunks per connection *)

val splice_axes : splice_axis list
val splice_axis_name : splice_axis -> string
val splice_axis_description : splice_axis -> string

val splice_profile : splice_axis -> workers:int -> Profile.t
(** Light-load profile (~45% device utilization under the userspace
    proxy) for a device with [workers] cores.  Processing times match
    the proxy's forwarding cost for the median chunk, so proxy and
    splice runs of the same profile price the same logical work. *)

type load = Light | Medium | Heavy

val loads : load list
val load_name : load -> string
val load_factor : load -> float
(** 1.0 / 2.0 / 3.0 *)

val profile : case -> workers:int -> Profile.t
(** The light-load profile for a device with [workers] cores. *)
