type case = Case1 | Case2 | Case3 | Case4

let all = [ Case1; Case2; Case3; Case4 ]

let name = function
  | Case1 -> "case1"
  | Case2 -> "case2"
  | Case3 -> "case3"
  | Case4 -> "case4"

let description = function
  | Case1 -> "High CPS, low avg processing time"
  | Case2 -> "High CPS, high avg processing time"
  | Case3 -> "Low CPS, low avg processing time"
  | Case4 -> "Low CPS, high avg processing time"

let cps_class = function Case1 | Case2 -> `High | Case3 | Case4 -> `Low
let processing_class = function Case1 | Case3 -> `Low | Case2 | Case4 -> `High

type splice_axis = Short_rpc | Long_streaming

let splice_axes = [ Short_rpc; Long_streaming ]

let splice_axis_name = function
  | Short_rpc -> "short-rpc"
  | Long_streaming -> "long-streaming"

let splice_axis_description = function
  | Short_rpc -> "Many small request/response exchanges; cost is dispatch, not bytes"
  | Long_streaming -> "Long-lived connections pumping 64 KiB chunks; cost is pure forwarding"

type load = Light | Medium | Heavy

let loads = [ Light; Medium; Heavy ]
let load_name = function Light -> "light" | Medium -> "medium" | Heavy -> "heavy"
let load_factor = function Light -> 1.0 | Medium -> 2.0 | Heavy -> 3.0

(* Light-load profiles target roughly 45% device utilization so the 3x
   replay pushes past saturation, reproducing Table 3's degradation
   shapes.  Utilization = cps * E[reqs/conn] * E[processing]. *)
let profile case ~workers =
  if workers <= 0 then invalid_arg "Cases.profile: workers must be positive";
  let w = float_of_int workers in
  let open Engine.Dist in
  match case with
  | Case1 ->
    (* mean processing ~ 0.21 ms; one request per connection. *)
    {
      Profile.name = "case1";
      cps = 0.45 *. w /. 0.00021;
      requests_per_conn = constant 1.0;
      request_gap = exponential ~mean:0.0003;
      request_size = lognormal_of_quantiles ~p50:300.0 ~p99:2500.0;
      processing_time = lognormal_of_quantiles ~p50:0.00012 ~p99:0.0009;
      op_mix = [ (0.8, Lb.Request.Plain_proxy); (0.2, Lb.Request.Websocket_frame) ];
      tenant_skew = 0.8;
    }
  | Case2 ->
    (* High-CPS stress traffic with compression-class work and a 1%
       hang-scale tail (the buffer-drain stalls of Appendix C); mean
       processing ~ 1.6 ms, so even "light" sits near saturation —
       this is the spike scenario the paper describes. *)
    {
      Profile.name = "case2";
      cps = 0.55 *. w /. 0.0016;
      requests_per_conn = constant 1.0;
      request_gap = exponential ~mean:0.002;
      request_size = lognormal_of_quantiles ~p50:4000.0 ~p99:60000.0;
      processing_time =
        mixture
          [
            (0.99, lognormal_of_quantiles ~p50:0.0004 ~p99:0.004);
            (0.01, lognormal_of_quantiles ~p50:0.05 ~p99:0.5);
          ];
      op_mix = [ (0.7, Lb.Request.Compress); (0.3, Lb.Request.Ssl_record) ];
      tenant_skew = 0.8;
    }
  | Case3 ->
    (* Long-lived connections: ~200 requests each, 50 ms apart, tiny
       processing (~75 us mean). *)
    {
      Profile.name = "case3";
      cps = 0.45 *. w /. (200.0 *. 0.000075);
      requests_per_conn = uniform ~lo:100.0 ~hi:300.0;
      request_gap = exponential ~mean:0.05;
      request_size = lognormal_of_quantiles ~p50:250.0 ~p99:1500.0;
      processing_time = lognormal_of_quantiles ~p50:0.00005 ~p99:0.0003;
      op_mix =
        [ (0.6, Lb.Request.Plain_proxy); (0.4, Lb.Request.Websocket_frame) ];
      tenant_skew = 0.8;
    }
  | Case4 ->
    (* Web services: a few expensive requests per connection (SSL
       handshake + regex routing) and a 3% stall tail; mean processing
       ~ 13 ms. *)
    {
      Profile.name = "case4";
      cps = 0.45 *. w /. (3.0 *. 0.0133);
      requests_per_conn = uniform ~lo:2.0 ~hi:4.999;
      request_gap = exponential ~mean:0.1;
      request_size = lognormal_of_quantiles ~p50:700.0 ~p99:4600.0;
      processing_time =
        mixture
          [
            (0.97, lognormal_of_quantiles ~p50:0.003 ~p99:0.030);
            (0.03, lognormal_of_quantiles ~p50:0.15 ~p99:1.5);
          ];
      op_mix =
        [
          (0.4, Lb.Request.Ssl_handshake);
          (0.4, Lb.Request.Regex_route);
          (0.2, Lb.Request.Protocol_translate);
        ];
      tenant_skew = 0.8;
    }

(* The splice axis varies the bytes-per-connection ratio that decides
   whether kernel-side forwarding pays: short RPCs amortize the attach
   over a handful of sub-KB exchanges, streams over hundreds of 64 KiB
   chunks.  Processing times approximate the userspace proxy's
   forwarding cost for the median chunk ([Lb.Request.default_cost] of
   a plain proxy op), so the splice mode's kernel-cycle pricing and
   the proxy baseline measure the same logical work. *)
let splice_profile axis ~workers =
  if workers <= 0 then
    invalid_arg "Cases.splice_profile: workers must be positive";
  let w = float_of_int workers in
  let open Engine.Dist in
  match axis with
  | Short_rpc ->
    (* Four ~600 B exchanges per connection, ~35 us of proxy work
       each: bypassing the copies saves almost nothing, only the two
       syscalls. *)
    {
      Profile.name = "short-rpc";
      cps = 0.45 *. w /. (4.0 *. 0.000035);
      requests_per_conn = constant 4.0;
      request_gap = exponential ~mean:0.001;
      request_size = lognormal_of_quantiles ~p50:600.0 ~p99:3000.0;
      processing_time = lognormal_of_quantiles ~p50:0.000033 ~p99:0.00012;
      op_mix = [ (1.0, Lb.Request.Plain_proxy) ];
      tenant_skew = 0.8;
    }
  | Long_streaming ->
    (* ~100 chunks of 64 KiB median per connection, 20 ms apart;
       proxying one chunk costs ~160 us of copyin/copyout, which is
       exactly what the sockmap redirect elides. *)
    {
      Profile.name = "long-streaming";
      cps = 0.45 *. w /. (100.0 *. 0.00016);
      requests_per_conn = uniform ~lo:50.0 ~hi:150.0;
      request_gap = exponential ~mean:0.02;
      request_size = lognormal_of_quantiles ~p50:65536.0 ~p99:262144.0;
      processing_time = lognormal_of_quantiles ~p50:0.00016 ~p99:0.0006;
      op_mix =
        [ (0.8, Lb.Request.Plain_proxy); (0.2, Lb.Request.Websocket_frame) ];
      tenant_skew = 0.8;
    }
