(** Seeded, replayable chaos runs.

    One chaos run is fully determined by [(config, plan)]: a fresh
    simulator, device, prober and workload generator are built from
    the seed, the plan is armed ({!Inject.arm}), invariant monitors
    ({!Monitor}) consume the run's trace stream online, and the
    outcome combines their verdicts with the usual latency and loss
    numbers.  Running the same plan with the same seed twice produces
    byte-identical trace streams — the property the qcheck replay test
    pins down. *)

type config = {
  mode : Lb.Device.mode;
  workers : int;
  tenants : int;
  seed : int;
  horizon : Engine.Sim_time.t;  (** traffic + injection window *)
  drain : Engine.Sim_time.t;
      (** extra quiet time after [horizon] for in-flight work to
          land before the monitors take their final sweep *)
  probes : bool;  (** run the per-worker health prober alongside *)
}

val default_config : config
(** Hermes mode, 8 workers, 4 tenants, seed [0xC0FFEE], 6 s horizon,
    300 ms drain, probes on. *)

val default_plan : Plan.t
(** The canonical all-classes plan: hang, WST write stall, eBPF
    program fault, crash → isolate → recover, map-sync delay with a
    probe-loss burst, accept-queue overflow, and a duty-cycle
    slowdown — spread over the 6 s default horizon so no two windows
    overlap on the same worker. *)

type outcome = {
  label : string;  (** mode name *)
  monitor : Monitor.report;
  completed : int;
  drops : int;
  resets : int;
  p50_ms : float;
  p99_ms : float;
  probes_sent : int;
  probes_delayed : int;
  trace_events : int;  (** records seen — the replay-equality witness *)
}

val run : ?capture:(Trace.record -> unit) -> ?plan:Plan.t -> config -> outcome
(** Execute one chaos run.  [capture] sees every trace record (after
    the monitors), e.g. to tee the stream to a file or hash it for
    replay comparison.  Installs its own trace sink for the duration
    (replacing any active one) and uninstalls on exit. *)

val print_outcome : outcome -> unit
(** Human-readable summary: headline numbers, one line per exclusion
    window and fallback episode, then the verdict. *)
