(** Deterministic fault-plan replay.

    [arm] schedules every plan entry on the device's simulator, so the
    injections interleave with traffic in virtual time exactly the
    same way on every run with the same seed.  Each firing emits a
    {!Trace.Fault_inject} record, and every bounded-duration fault
    emits the matching {!Trace.Fault_clear} when it lifts — the
    invariant monitors key their windows off these records, so the
    trace stream alone carries the whole chaos timeline. *)

val slowdown_period : Engine.Sim_time.t
(** Duty-cycle period of the [Slowdown] fault (5 ms): each period the
    victim burns [(factor-1)/factor] of it on synthetic work. *)

val arm : device:Lb.Device.t -> plan:Plan.t -> unit
(** Schedule the plan against the device.  Call after {!Lb.Device.create}
    and before driving the simulator; entries dated before the current
    virtual time are a programming error and raise through the
    simulator's scheduling guard.  Faults that need the Hermes runtime
    ([Wst_stall], [Map_sync_delay]) still emit their trace records in
    other modes but inject nothing, keeping the trace timeline
    comparable across the mode sweep. *)
