module Sim = Engine.Sim
module Sim_time = Engine.Sim_time
module Device = Lb.Device
module Worker = Lb.Worker

let slowdown_period = Sim_time.ms 5

let emit_inject ~fault ~worker ~arg =
  if Trace.enabled () then Trace.emit (Trace.Fault_inject { fault; worker; arg })

let emit_clear ~fault ~worker =
  if Trace.enabled () then Trace.emit (Trace.Fault_clear { fault; worker })

(* Freeze the victim's WST availability column, if there is one. *)
let set_wst_stall device ~worker on =
  match Device.hermes_runtime device with
  | None -> ()
  | Some rt ->
    let groups = Hermes.Runtime.groups rt in
    let g, within = Hermes.Groups.group_of_worker groups worker in
    Hermes.Wst.set_stall (Hermes.Groups.wst groups g) within on

let stall ~device ~worker ~cost =
  ignore
    (Worker.inject_stall (Device.worker device worker) ~req_id:(Device.fresh_id device)
       ~cost)

let fire ~device (entry : Plan.entry) =
  let sim = Device.sim device in
  let fault = Plan.kind entry.action in
  let worker = Option.value (Plan.worker_of entry.action) ~default:(-1) in
  let arg =
    match entry.action with
    | Plan.Map_sync_delay { delay; _ } -> delay
    | action -> Option.value (Plan.duration_of action) ~default:0
  in
  emit_inject ~fault ~worker ~arg;
  let clear_after duration undo =
    ignore
      (Sim.schedule_after sim ~delay:duration (fun () ->
           undo ();
           emit_clear ~fault ~worker))
  in
  match entry.action with
  | Plan.Crash { worker } -> Device.crash_worker device worker
  | Plan.Isolate { worker } -> Device.isolate_worker device worker
  | Plan.Recover { worker } ->
    Device.recover_worker device worker;
    (* The matching end of the [crash] window, for the monitors. *)
    emit_clear ~fault:"crash" ~worker
  | Plan.Hang { worker; duration } | Plan.Gc_pause { worker; duration } ->
    stall ~device ~worker ~cost:duration;
    clear_after duration (fun () -> ())
  | Plan.Slowdown { worker; factor; duration } ->
    let burn = slowdown_period * (factor - 1) / factor in
    let rec tick remaining =
      if remaining > 0 then begin
        stall ~device ~worker ~cost:(Sim_time.min burn remaining);
        ignore
          (Sim.schedule_after sim ~delay:slowdown_period (fun () ->
               tick (remaining - slowdown_period)))
      end
    in
    tick duration;
    clear_after duration (fun () -> ())
  | Plan.Wst_stall { worker; duration } ->
    set_wst_stall device ~worker true;
    clear_after duration (fun () -> set_wst_stall device ~worker false)
  | Plan.Map_sync_delay { delay; duration } ->
    Device.set_map_sync_delay device (Some delay);
    clear_after duration (fun () -> Device.set_map_sync_delay device None)
  | Plan.Ebpf_fail { duration } ->
    Device.fail_ebpf_prog device;
    clear_after duration (fun () -> Device.restore_ebpf_prog device)
  | Plan.Probe_loss { duration } ->
    Device.set_probe_loss device true;
    clear_after duration (fun () -> Device.set_probe_loss device false)
  | Plan.Accept_overflow { worker; duration } ->
    Device.overflow_accept_queue device ~worker;
    clear_after duration (fun () -> Device.restore_accept_queue device ~worker)
  | Plan.Splice_desync { worker; duration } ->
    Device.set_splice_desync device ~worker true;
    clear_after duration (fun () -> Device.set_splice_desync device ~worker false)

let arm ~device ~plan =
  let sim = Device.sim device in
  List.iter
    (fun (entry : Plan.entry) ->
      ignore (Sim.schedule sim ~at:entry.at (fun () -> fire ~device entry)))
    plan
