(** Typed fault plans.

    A plan is a schedule of injections against one device: each entry
    names a virtual instant and a fault action.  Plans are plain data —
    parsed from a small line-oriented text format, linted against the
    device shape, and replayed deterministically by {!Inject} — so a
    chaos run is fully described by [(plan, seed)] and nothing else.

    The text format is one entry per line:

    {v
    # comments and blank lines are ignored
    at 500ms  hang         worker=2 duration=400ms
    at 1s     ebpf_fail    duration=300ms
    at 2s     crash        worker=5
    at 2600ms recover      worker=5
    v}

    Times are integers with a unit suffix ([ns], [us], [ms], [s]); a
    bare integer means nanoseconds.  [to_string]/[parse] round-trip. *)

type action =
  | Crash of { worker : int }
      (** The worker process dies ({!Lb.Device.crash_worker}); its
          dedicated sockets keep attracting SYNs until isolation. *)
  | Isolate of { worker : int }
      (** Detection acted: unbind the worker's dedicated sockets and
          force its availability stale ({!Lb.Device.isolate_worker}). *)
  | Recover of { worker : int }
      (** Restart a crashed worker ({!Lb.Device.recover_worker}). *)
  | Hang of { worker : int; duration : Engine.Sim_time.t }
      (** One oversized request charged through the event loop — the
          §5.2.1 stuck-drain stall. *)
  | Gc_pause of { worker : int; duration : Engine.Sim_time.t }
      (** Same loop-stopping mechanism as [Hang], but named separately
          so traces and reports distinguish runtime pauses from stuck
          requests.  The WST availability timestamp freezes either
          way. *)
  | Slowdown of { worker : int; factor : int; duration : Engine.Sim_time.t }
      (** Duty-cycle slowdown: for [duration], the worker burns
          [(factor-1)/factor] of every 5 ms period on synthetic work,
          so it runs at [1/factor] speed without ever fully stalling —
          its timestamp keeps advancing, only slower. *)
  | Wst_stall of { worker : int; duration : Engine.Sim_time.t }
      (** The worker's WST availability writes stop landing
          ({!Hermes.Wst.set_stall}) while the process stays healthy:
          the scheduler must exclude it on staleness alone. *)
  | Map_sync_delay of { delay : Engine.Sim_time.t; duration : Engine.Sim_time.t }
      (** Every scheduler bitmap push is deferred by [delay]; the
          kernel dispatches on stale bitmaps in the interim. *)
  | Ebpf_fail of { duration : Engine.Sim_time.t }
      (** Every port group's dispatch program faults at run time;
          selection must degrade to the rank-select hash fallback and
          re-engage the program after clearing. *)
  | Probe_loss of { duration : Engine.Sim_time.t }
      (** Health probes are lost on the wire (timeout-only outcomes);
          tenant traffic is untouched. *)
  | Accept_overflow of { worker : int; duration : Engine.Sim_time.t }
      (** The worker's listening backlogs clamp to one pending
          connection, so handshake bursts overflow and drop. *)
  | Splice_desync of { worker : int; duration : Engine.Sim_time.t }
      (** Sockmap deletes targeting the worker are silently lost
          ({!Lb.Device.set_splice_desync}): teardowns leave stale
          kernel entries behind.  The splice plane's strict conn-id
          verification must keep any stale entry from redirecting
          bytes; disabling it lets the monitors demonstrate the
          misdelivery.  No-op outside splice mode. *)

type entry = { at : Engine.Sim_time.t; action : action }
type t = entry list

val kind : action -> string
(** Stable fault-class name as it appears in {!Trace.Fault_inject}
    records and plan files: ["crash"], ["hang"], ["wst_stall"], … *)

val worker_of : action -> int option
(** The targeted worker; [None] for device-wide faults. *)

val duration_of : action -> Engine.Sim_time.t option

val stops_availability : string -> bool
(** Whether the named fault class freezes the victim's WST
    availability timestamp — i.e. the Algo 1 time filter must exclude
    the worker within one staleness window.  True for ["crash"],
    ["hang"], ["gc_pause"] and ["wst_stall"]. *)

val kinds : string list
(** All fault-class names, plan-file order. *)

(** {1 Text format} *)

val time_to_string : Engine.Sim_time.t -> string
(** Shortest exact unit: ["2s"], ["2500ms"], ["150us"], ["42ns"]. *)

val entry_to_string : entry -> string
val to_string : t -> string

val parse : string -> (t, string) result
(** Parse a whole plan file.  Errors carry the 1-based line number.
    Entries are returned sorted by [at] (stable). *)

val load : string -> (t, string) result
(** [parse] of a file's contents; [Error] on unreadable files too. *)

val lint : workers:int -> t -> (unit, string list) result
(** Static checks against the device shape: worker ids in range,
    positive durations and delays, slowdown factor at least 2.
    Returns every problem, not just the first. *)
