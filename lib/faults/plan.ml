module Sim_time = Engine.Sim_time

type action =
  | Crash of { worker : int }
  | Isolate of { worker : int }
  | Recover of { worker : int }
  | Hang of { worker : int; duration : Sim_time.t }
  | Gc_pause of { worker : int; duration : Sim_time.t }
  | Slowdown of { worker : int; factor : int; duration : Sim_time.t }
  | Wst_stall of { worker : int; duration : Sim_time.t }
  | Map_sync_delay of { delay : Sim_time.t; duration : Sim_time.t }
  | Ebpf_fail of { duration : Sim_time.t }
  | Probe_loss of { duration : Sim_time.t }
  | Accept_overflow of { worker : int; duration : Sim_time.t }
  | Splice_desync of { worker : int; duration : Sim_time.t }

type entry = { at : Sim_time.t; action : action }
type t = entry list

let kind = function
  | Crash _ -> "crash"
  | Isolate _ -> "isolate"
  | Recover _ -> "recover"
  | Hang _ -> "hang"
  | Gc_pause _ -> "gc_pause"
  | Slowdown _ -> "slowdown"
  | Wst_stall _ -> "wst_stall"
  | Map_sync_delay _ -> "map_sync_delay"
  | Ebpf_fail _ -> "ebpf_fail"
  | Probe_loss _ -> "probe_loss"
  | Accept_overflow _ -> "accept_overflow"
  | Splice_desync _ -> "splice_desync"

let kinds =
  [
    "crash"; "isolate"; "recover"; "hang"; "gc_pause"; "slowdown";
    "wst_stall"; "map_sync_delay"; "ebpf_fail"; "probe_loss";
    "accept_overflow"; "splice_desync";
  ]

let worker_of = function
  | Crash { worker }
  | Isolate { worker }
  | Recover { worker }
  | Hang { worker; _ }
  | Gc_pause { worker; _ }
  | Slowdown { worker; _ }
  | Wst_stall { worker; _ }
  | Accept_overflow { worker; _ }
  | Splice_desync { worker; _ } ->
    Some worker
  | Map_sync_delay _ | Ebpf_fail _ | Probe_loss _ -> None

let duration_of = function
  | Crash _ | Isolate _ | Recover _ -> None
  | Hang { duration; _ }
  | Gc_pause { duration; _ }
  | Slowdown { duration; _ }
  | Wst_stall { duration; _ }
  | Map_sync_delay { duration; _ }
  | Ebpf_fail { duration }
  | Probe_loss { duration }
  | Accept_overflow { duration; _ }
  | Splice_desync { duration; _ } ->
    Some duration

let stops_availability = function
  | "crash" | "hang" | "gc_pause" | "wst_stall" -> true
  | _ -> false

(* Text format *)

let time_to_string (t : Sim_time.t) =
  if t <> 0 && t mod 1_000_000_000 = 0 then
    Printf.sprintf "%ds" (t / 1_000_000_000)
  else if t <> 0 && t mod 1_000_000 = 0 then Printf.sprintf "%dms" (t / 1_000_000)
  else if t <> 0 && t mod 1_000 = 0 then Printf.sprintf "%dus" (t / 1_000)
  else Printf.sprintf "%dns" t

let parse_time s =
  let strip suffix =
    let n = String.length s and k = String.length suffix in
    if n > k && String.sub s (n - k) k = suffix then
      Some (String.sub s 0 (n - k))
    else None
  in
  let with_unit mult digits =
    match int_of_string_opt digits with
    | Some v when v >= 0 -> Ok (v * mult)
    | _ -> Error (Printf.sprintf "bad time %S" s)
  in
  (* "ns"/"us"/"ms" before "s": "ms" also ends in "s". *)
  match strip "ns" with
  | Some d -> with_unit 1 d
  | None -> (
    match strip "us" with
    | Some d -> with_unit 1_000 d
    | None -> (
      match strip "ms" with
      | Some d -> with_unit 1_000_000 d
      | None -> (
        match strip "s" with
        | Some d -> with_unit 1_000_000_000 d
        | None -> with_unit 1 s)))

let entry_to_string { at; action } =
  let time = time_to_string in
  let args =
    match action with
    | Crash { worker } | Isolate { worker } | Recover { worker } ->
      Printf.sprintf "worker=%d" worker
    | Hang { worker; duration }
    | Gc_pause { worker; duration }
    | Wst_stall { worker; duration }
    | Accept_overflow { worker; duration }
    | Splice_desync { worker; duration } ->
      Printf.sprintf "worker=%d duration=%s" worker (time duration)
    | Slowdown { worker; factor; duration } ->
      Printf.sprintf "worker=%d factor=%d duration=%s" worker factor
        (time duration)
    | Map_sync_delay { delay; duration } ->
      Printf.sprintf "delay=%s duration=%s" (time delay) (time duration)
    | Ebpf_fail { duration } | Probe_loss { duration } ->
      Printf.sprintf "duration=%s" (time duration)
  in
  Printf.sprintf "at %s %s %s" (time at) (kind action) args

let to_string plan =
  String.concat "" (List.map (fun e -> entry_to_string e ^ "\n") plan)

let parse_entry ~line s =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt in
  let tokens =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | "at" :: at :: kind_tok :: rest -> (
    match parse_time at with
    | Error e -> fail "%s" e
    | Ok at ->
      let kvs = ref [] and bad = ref None in
      List.iter
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> if !bad = None then bad := Some tok
          | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            kvs := (k, v) :: !kvs)
        rest;
      (match !bad with
      | Some tok -> fail "expected key=value, got %S" tok
      | None ->
        let lookup key = List.assoc_opt key !kvs in
        let known_keys = [ "worker"; "duration"; "factor"; "delay" ] in
        let unknown =
          List.filter (fun (k, _) -> not (List.mem k known_keys)) !kvs
        in
        if unknown <> [] then
          fail "unknown argument %S" (fst (List.hd unknown))
        else
          let int_arg key =
            match lookup key with
            | None -> Error (Printf.sprintf "missing %s=" key)
            | Some v -> (
              match int_of_string_opt v with
              | Some n -> Ok n
              | None -> Error (Printf.sprintf "bad %s=%S" key v))
          in
          let time_arg key =
            match lookup key with
            | None -> Error (Printf.sprintf "missing %s=" key)
            | Some v -> parse_time v
          in
          let ( let* ) r f = match r with Ok v -> f v | Error e -> fail "%s" e in
          let action =
            match kind_tok with
            | "crash" ->
              let* worker = int_arg "worker" in
              Ok (Crash { worker })
            | "isolate" ->
              let* worker = int_arg "worker" in
              Ok (Isolate { worker })
            | "recover" ->
              let* worker = int_arg "worker" in
              Ok (Recover { worker })
            | "hang" ->
              let* worker = int_arg "worker" in
              let* duration = time_arg "duration" in
              Ok (Hang { worker; duration })
            | "gc_pause" ->
              let* worker = int_arg "worker" in
              let* duration = time_arg "duration" in
              Ok (Gc_pause { worker; duration })
            | "slowdown" ->
              let* worker = int_arg "worker" in
              let* factor = int_arg "factor" in
              let* duration = time_arg "duration" in
              Ok (Slowdown { worker; factor; duration })
            | "wst_stall" ->
              let* worker = int_arg "worker" in
              let* duration = time_arg "duration" in
              Ok (Wst_stall { worker; duration })
            | "map_sync_delay" ->
              let* delay = time_arg "delay" in
              let* duration = time_arg "duration" in
              Ok (Map_sync_delay { delay; duration })
            | "ebpf_fail" ->
              let* duration = time_arg "duration" in
              Ok (Ebpf_fail { duration })
            | "probe_loss" ->
              let* duration = time_arg "duration" in
              Ok (Probe_loss { duration })
            | "accept_overflow" ->
              let* worker = int_arg "worker" in
              let* duration = time_arg "duration" in
              Ok (Accept_overflow { worker; duration })
            | "splice_desync" ->
              let* worker = int_arg "worker" in
              let* duration = time_arg "duration" in
              Ok (Splice_desync { worker; duration })
            | k -> fail "unknown fault kind %S" k
          in
          (match action with
          | Ok action -> Ok { at; action }
          | Error e -> Error e)))
  | _ -> fail "expected: at <time> <kind> key=value..."

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] and errors = ref [] in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s <> "" && s.[0] <> '#' then
        match parse_entry ~line s with
        | Ok e -> entries := e :: !entries
        | Error e -> errors := e :: !errors)
    lines;
  match List.rev !errors with
  | [] ->
    Ok (List.stable_sort (fun a b -> compare a.at b.at) (List.rev !entries))
  | e :: _ -> Error e

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let lint ~workers plan =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun e ->
      let k = kind e.action in
      (match worker_of e.action with
      | Some w when w < 0 || w >= workers ->
        add "at %s: %s targets unknown worker %d (device has %d: ids 0..%d)"
          (time_to_string e.at) k w workers (workers - 1)
      | _ -> ());
      (match duration_of e.action with
      | Some d when d <= 0 ->
        add "at %s: %s has non-positive duration" (time_to_string e.at) k
      | _ -> ());
      match e.action with
      | Slowdown { factor; _ } when factor < 2 ->
        add "at %s: slowdown factor must be at least 2 (got %d)"
          (time_to_string e.at) factor
      | Map_sync_delay { delay; _ } when delay <= 0 ->
        add "at %s: map_sync_delay needs a positive delay" (time_to_string e.at)
      | _ -> ())
    plan;
  match List.rev !problems with [] -> Ok () | ps -> Error ps
