module Sim_time = Engine.Sim_time

type config = {
  staleness_window : Sim_time.t;
  selection_slack : Sim_time.t;
  fallback_bound : int;
  expect_exclusion : bool;
  expect_fallback : bool;
}

let default_config =
  {
    staleness_window = Hermes.Config.default.Hermes.Config.avail_threshold;
    selection_slack = Sim_time.ms 10;
    fallback_bound = 1;
    expect_exclusion = true;
    expect_fallback = true;
  }

type exclusion = {
  fault : string;
  worker : int;
  injected_at : Sim_time.t;
  deadline : Sim_time.t;
  mutable last_before_deadline : Sim_time.t option;
  mutable late_dispatches : int;
  mutable late_hash_fallbacks : int;
  mutable cleared_at : Sim_time.t option;
}

type fallback = {
  failed_at : Sim_time.t;
  mutable prog_before_engage : int;
  mutable engaged : bool;
  mutable hash_selects : int;
  mutable restored_at : Sim_time.t option;
  mutable selects_after_restore : int;
  mutable prog_after_restore : int;
}

type t = {
  config : config;
  open_conns : (int, int) Hashtbl.t;  (* conn id -> accepting worker *)
  mutable accepted : int;
  mutable completed_closes : int;
  active_excl : (int, exclusion) Hashtbl.t;  (* worker -> current window *)
  mutable all_excl : exclusion list;  (* reverse injection order *)
  mutable fallbacks : fallback list;  (* reverse injection order *)
  (* Splice invariant: once a [Splice_teardown] names a connection, no
     later [Splice_redirect] may — conn ids are never reused, so the
     set only grows. *)
  torn_down : (int, Sim_time.t) Hashtbl.t;  (* conn id -> teardown time *)
  mutable splice_redirects : int;
  mutable stale_splice_redirects : int;
  mutable first_stale_redirect : string option;
}

let create config =
  {
    config;
    open_conns = Hashtbl.create 1024;
    accepted = 0;
    completed_closes = 0;
    active_excl = Hashtbl.create 8;
    all_excl = [];
    fallbacks = [];
    torn_down = Hashtbl.create 256;
    splice_redirects = 0;
    stale_splice_redirects = 0;
    first_stale_redirect = None;
  }

let current_fallback t =
  match t.fallbacks with
  | fb :: _ -> Some fb
  | [] -> None

(* A kernel selection landed on [worker] at [time]: check it against
   any open exclusion window.  Only program-directed ([Prog]) picks
   past the deadline violate the invariant — when the bitmap falls
   below [min_selected] (or the program is detached) Algo 2 falls back
   to hashing over the whole group by design, and that floor may
   legitimately hit the faulted worker; those are tallied apart. *)
let saw_dispatch t ~worker ~time ~via =
  match Hashtbl.find_opt t.active_excl worker with
  | None -> ()
  | Some excl ->
    if time <= excl.deadline then excl.last_before_deadline <- Some time
    else (
      match via with
      | Trace.Prog -> excl.late_dispatches <- excl.late_dispatches + 1
      | Trace.Hash ->
        excl.late_hash_fallbacks <- excl.late_hash_fallbacks + 1)

let observe t (r : Trace.record) =
  match r.event with
  | Trace.Fault_inject { fault; worker; arg = _ } ->
    if Plan.stops_availability fault && worker >= 0 then begin
      let excl =
        {
          fault;
          worker;
          injected_at = r.time;
          deadline =
            r.time + t.config.staleness_window + t.config.selection_slack;
          last_before_deadline = None;
          late_dispatches = 0;
          late_hash_fallbacks = 0;
          cleared_at = None;
        }
      in
      Hashtbl.replace t.active_excl worker excl;
      t.all_excl <- excl :: t.all_excl
    end;
    if fault = "ebpf_fail" then
      t.fallbacks <-
        {
          failed_at = r.time;
          prog_before_engage = 0;
          engaged = false;
          hash_selects = 0;
          restored_at = None;
          selects_after_restore = 0;
          prog_after_restore = 0;
        }
        :: t.fallbacks
  | Trace.Fault_clear { fault; worker } ->
    (if Plan.stops_availability fault then
       match Hashtbl.find_opt t.active_excl worker with
       | Some excl when excl.fault = fault ->
         excl.cleared_at <- Some r.time;
         Hashtbl.remove t.active_excl worker
       | _ -> ());
    if fault = "ebpf_fail" then
      Option.iter
        (fun fb -> if fb.restored_at = None then fb.restored_at <- Some r.time)
        (current_fallback t)
  | Trace.Rp_select { via; slot; _ } -> (
    if t.config.expect_exclusion then
      saw_dispatch t ~worker:slot ~time:r.time ~via;
    match current_fallback t with
    | None -> ()
    | Some fb -> (
      match fb.restored_at with
      | None -> (
        match via with
        | Trace.Hash ->
          fb.engaged <- true;
          fb.hash_selects <- fb.hash_selects + 1
        | Trace.Prog ->
          if not fb.engaged then
            fb.prog_before_engage <- fb.prog_before_engage + 1)
      | Some _ ->
        fb.selects_after_restore <- fb.selects_after_restore + 1;
        if via = Trace.Prog then
          fb.prog_after_restore <- fb.prog_after_restore + 1))
  | Trace.Accept { worker; conn } ->
    (* The selection, not the accept, is the dispatch decision: every
       accept was preceded by its SYN's [Rp_select], already checked. *)
    t.accepted <- t.accepted + 1;
    Hashtbl.replace t.open_conns conn worker
  | Trace.Close { conn; _ } ->
    if Hashtbl.mem t.open_conns conn then begin
      Hashtbl.remove t.open_conns conn;
      t.completed_closes <- t.completed_closes + 1
    end
  | Trace.Splice_teardown { conn; _ } ->
    if not (Hashtbl.mem t.torn_down conn) then
      Hashtbl.replace t.torn_down conn r.time
  | Trace.Splice_redirect { conn; worker; bytes; _ } ->
    t.splice_redirects <- t.splice_redirects + 1;
    (match Hashtbl.find_opt t.torn_down conn with
    | None -> ()
    | Some torn_at ->
      t.stale_splice_redirects <- t.stale_splice_redirects + 1;
      if t.first_stale_redirect = None then
        t.first_stale_redirect <-
          Some
            (Printf.sprintf
               "%d bytes to conn %d on worker %d at %s (torn down at %s)"
               bytes conn worker (Sim_time.to_string r.time)
               (Sim_time.to_string torn_at)))
  | _ -> ()

(* An exclusion window is enforceable only if the fault outlived the
   deadline: a 50 ms hang under a 100 ms staleness window never obliges
   the scheduler to react. *)
let enforceable excl =
  match excl.cleared_at with
  | None -> true
  | Some cleared -> cleared > excl.deadline

type report = {
  accepted : int;
  completed_closes : int;
  lost : int;
  exclusions : exclusion list;
  fallbacks : fallback list;
  splice_redirects : int;
  stale_splice_redirects : int;
  violations : string list;
}

let finalize t ~device =
  let still_owned = Hashtbl.create 64 in
  Array.iter
    (fun w ->
      List.iter
        (fun (c : Lb.Conn.t) -> Hashtbl.replace still_owned c.Lb.Conn.id ())
        (Lb.Worker.conns w))
    (Lb.Device.workers device);
  let lost =
    Hashtbl.fold
      (fun conn _w acc -> if Hashtbl.mem still_owned conn then acc else acc + 1)
      t.open_conns 0
  in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if lost > 0 then
    add "%d accepted connections vanished (neither closed nor owned)" lost;
  let exclusions = List.rev t.all_excl in
  List.iter
    (fun e ->
      if enforceable e && e.late_dispatches > 0 then
        add "worker %d got %d dispatches past the staleness deadline (%s at %s)"
          e.worker e.late_dispatches e.fault
          (Sim_time.to_string e.injected_at))
    exclusions;
  let fallbacks = List.rev t.fallbacks in
  if t.config.expect_fallback then
  List.iter
    (fun fb ->
      if fb.prog_before_engage > t.config.fallback_bound then
        add "hash fallback engaged only after %d program selections (bound %d)"
          fb.prog_before_engage t.config.fallback_bound;
      if
        fb.restored_at <> None
        && fb.selects_after_restore > 0
        && fb.prog_after_restore = 0
      then
        add "bitmap dispatch never resumed after ebpf restore at %s"
          (Sim_time.to_string (Option.get fb.restored_at)))
    fallbacks;
  if t.stale_splice_redirects > 0 then
    add "%d splice redirects hit torn-down connections (first: %s)"
      t.stale_splice_redirects
      (Option.value t.first_stale_redirect ~default:"?");
  {
    accepted = t.accepted;
    completed_closes = t.completed_closes;
    lost;
    exclusions;
    fallbacks;
    splice_redirects = t.splice_redirects;
    stale_splice_redirects = t.stale_splice_redirects;
    violations = List.rev !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf "accepted %d, closed %d, lost %d@," r.accepted
    r.completed_closes r.lost;
  if r.splice_redirects > 0 then
    Format.fprintf ppf "splice: %d redirects, %d stale@," r.splice_redirects
      r.stale_splice_redirects;
  List.iter
    (fun e ->
      let converged =
        match e.last_before_deadline with
        | Some last -> Sim_time.to_string (last - e.injected_at)
        | None -> "none seen"
      in
      Format.fprintf ppf
        "%s worker=%d at %s: last dispatch within %s, %d late%s%s@," e.fault
        e.worker
        (Sim_time.to_string e.injected_at)
        converged e.late_dispatches
        (if e.late_hash_fallbacks > 0 then
           Printf.sprintf " (+%d hash-floor picks)" e.late_hash_fallbacks
         else "")
        (if enforceable e then "" else " (window shorter than threshold)"))
    r.exclusions;
  List.iter
    (fun fb ->
      Format.fprintf ppf
        "ebpf_fail at %s: %d prog selects before fallback, %d hash selects, \
         recovery %s@,"
        (Sim_time.to_string fb.failed_at)
        fb.prog_before_engage fb.hash_selects
        (match fb.restored_at with
        | None -> "never restored"
        | Some _ when fb.selects_after_restore = 0 -> "untested (no traffic)"
        | Some _ when fb.prog_after_restore > 0 ->
          Printf.sprintf "ok (%d/%d prog)" fb.prog_after_restore
            fb.selects_after_restore
        | Some _ -> "no prog selections after restore"))
    r.fallbacks;
  match r.violations with
  | [] -> Format.fprintf ppf "all invariants held@,"
  | vs ->
    List.iter (fun v -> Format.fprintf ppf "VIOLATION: %s@," v) vs
