(** Online invariant monitors for chaos runs.

    A monitor subscribes to the {!Trace} stream of a run (feed every
    record to {!observe}) and checks the paper's safety claims as the
    run unfolds:

    - {b Staleness exclusion}: a worker hit by an
      availability-stopping fault (crash, hang, GC pause, WST write
      stall) receives zero {e program-directed} dispatches once one
      staleness window (plus a small in-flight slack) has elapsed,
      until the fault clears.  Hash-fallback picks are exempt: when
      exclusion would leave fewer than [min_selected] workers, Algo 2
      deliberately trades precision for availability and hashes over
      the whole group.
    - {b Fallback engagement}: while the eBPF program is faulted, the
      reuseport group switches to the rank-select hash fallback within
      a bounded number of selections (with the userspace hook, the
      very first post-fault selection).
    - {b Recovery}: after the program is restored, bitmap ([Prog])
      dispatch resumes.
    - {b No lost connections}: every accepted connection is eventually
      closed, reset, or still owned by a worker at finalization —
      none silently vanish.
    - {b Splice teardown}: once a [Splice_teardown] names a
      connection, no later [Splice_redirect] may name it — a stale
      sockmap entry forwarding bytes to a torn-down connection (or the
      restarted worker behind it) is exactly the misdelivery the
      userspace-directed teardown protocol exists to prevent.

    The monitor only reads trace records plus one final sweep of the
    device's connection tables, so it cannot perturb the run it
    checks. *)

type config = {
  staleness_window : Engine.Sim_time.t;
      (** the Algo 1 time-filter threshold (Hermes
          [avail_threshold]) *)
  selection_slack : Engine.Sim_time.t;
      (** grace after the window for scheduler passes already in
          flight when the deadline passed *)
  fallback_bound : int;
      (** max [Prog] selections tolerated between an [ebpf_fail]
          injection and the first [Hash] fallback pick *)
  expect_exclusion : bool;
      (** enforce the staleness-exclusion invariant — only meaningful
          when a Hermes bitmap actually gates dispatch; plain
          reuseport hashing famously keeps selecting dead workers *)
  expect_fallback : bool;
      (** enforce the fallback-engagement and recovery invariants —
          again Hermes-only: without an attached program there is
          nothing to fall back from or recover to *)
}

val default_config : config
(** 100 ms window (Hermes {!Hermes.Config.default}), 10 ms slack,
    fallback bound 1, exclusion and fallback enforced. *)

type exclusion = {
  fault : string;
  worker : int;
  injected_at : Engine.Sim_time.t;
  deadline : Engine.Sim_time.t;  (** injected_at + window + slack *)
  mutable last_before_deadline : Engine.Sim_time.t option;
      (** latest dispatch inside the allowed window — how fast the
          filter converged *)
  mutable late_dispatches : int;
      (** program-directed ([Prog]) selections after the deadline:
          violations *)
  mutable late_hash_fallbacks : int;
      (** [Hash] selections after the deadline — the [min_selected]
          availability floor or a detached program hashing over the
          whole group; permitted by design, reported for visibility *)
  mutable cleared_at : Engine.Sim_time.t option;
}

type fallback = {
  failed_at : Engine.Sim_time.t;
  mutable prog_before_engage : int;
      (** [Prog] selections before the first [Hash] pick *)
  mutable engaged : bool;
  mutable hash_selects : int;
  mutable restored_at : Engine.Sim_time.t option;
  mutable selects_after_restore : int;
  mutable prog_after_restore : int;
}

type t

val create : config -> t

val observe : t -> Trace.record -> unit
(** Feed one trace record, in stream order. *)

type report = {
  accepted : int;
  completed_closes : int;
  lost : int;
  exclusions : exclusion list;  (** injection order *)
  fallbacks : fallback list;  (** injection order *)
  splice_redirects : int;  (** in-kernel redirects observed *)
  stale_splice_redirects : int;
      (** redirects naming an already-torn-down connection — each one
          is a violation *)
  violations : string list;  (** empty iff every invariant held *)
}

val finalize : t -> device:Lb.Device.t -> report
(** End-of-run sweep: resolve still-open connections against the
    workers' tables (anything accepted but neither closed nor owned is
    {e lost}) and assemble the violation list. *)

val pp_report : Format.formatter -> report -> unit
