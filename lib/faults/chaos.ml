module Sim = Engine.Sim
module Sim_time = Engine.Sim_time
module Device = Lb.Device

type config = {
  mode : Device.mode;
  workers : int;
  tenants : int;
  seed : int;
  horizon : Sim_time.t;
  drain : Sim_time.t;
  probes : bool;
}

let default_config =
  {
    mode = Device.Hermes Hermes.Config.default;
    workers = 8;
    tenants = 4;
    seed = 0xC0FFEE;
    horizon = Sim_time.sec 6;
    drain = Sim_time.ms 300;
    probes = true;
  }

let default_plan =
  let ms = Sim_time.ms in
  Plan.
    [
      { at = ms 500; action = Hang { worker = 1; duration = ms 600 } };
      { at = ms 1500; action = Wst_stall { worker = 2; duration = ms 600 } };
      { at = ms 2300; action = Ebpf_fail { duration = ms 400 } };
      (* Desync overlaps the crash arc on the same worker: teardown
         deletes for worker 3's connections are lost exactly when the
         isolate/restart sweeps fire.  Strict splice verification must
         keep violations at zero regardless; other modes no-op. *)
      { at = ms 2900; action = Splice_desync { worker = 3; duration = ms 1000 } };
      { at = ms 3000; action = Crash { worker = 3 } };
      { at = ms 3200; action = Isolate { worker = 3 } };
      { at = ms 3800; action = Recover { worker = 3 } };
      {
        at = ms 4200;
        action = Map_sync_delay { delay = ms 20; duration = ms 400 };
      };
      { at = ms 4200; action = Probe_loss { duration = ms 400 } };
      {
        at = ms 4800;
        action = Accept_overflow { worker = 0; duration = ms 400 };
      };
      {
        at = ms 5400;
        action = Slowdown { worker = 4; factor = 4; duration = ms 500 };
      };
    ]

type outcome = {
  label : string;
  monitor : Monitor.report;
  completed : int;
  drops : int;
  resets : int;
  p50_ms : float;
  p99_ms : float;
  probes_sent : int;
  probes_delayed : int;
  trace_events : int;
}

let monitor_config_for mode =
  match mode with
  | Device.Hermes (cfg : Hermes.Config.t) ->
    {
      Monitor.default_config with
      Monitor.staleness_window = cfg.Hermes.Config.avail_threshold;
      expect_exclusion = true;
      expect_fallback = true;
    }
  | _ ->
    {
      Monitor.default_config with
      Monitor.expect_exclusion = false;
      expect_fallback = false;
    }

let run ?capture ?(plan = default_plan) config =
  let sim = Sim.create () in
  let rng = Engine.Rng.create config.seed in
  let device_rng = Engine.Rng.split rng in
  let tenant_arr = Netsim.Tenant.population ~n:config.tenants ~base_dport:20000 in
  let device =
    Device.create ~sim ~rng:device_rng ~mode:config.mode ~workers:config.workers
      ~tenants:tenant_arr ()
  in
  let monitor = Monitor.create (monitor_config_for config.mode) in
  let events = ref 0 in
  let sink =
    {
      Trace.write =
        (fun r ->
          incr events;
          Monitor.observe monitor r;
          match capture with None -> () | Some f -> f r);
      close = ignore;
    }
  in
  Trace.with_sink sink (fun () ->
      Device.start device;
      Inject.arm ~device ~plan;
      let prober =
        if config.probes then
          Some
            (Lb.Probe.Per_worker.start ~config:Lb.Probe.default_config
               ~target:device)
        else None
      in
      let profile =
        Workload.Cases.profile Workload.Cases.Case1 ~workers:config.workers
      in
      let driver = Workload.Driver.start ~device ~profile ~rng () in
      Sim.run_until sim ~limit:config.horizon;
      Workload.Driver.stop driver;
      Option.iter Lb.Probe.Per_worker.stop prober;
      Sim.run_until sim ~limit:(config.horizon + config.drain);
      let hist = Device.latency_hist device in
      let to_ms ns = ns /. 1e6 in
      {
        label = Device.mode_name config.mode;
        monitor = Monitor.finalize monitor ~device;
        completed = Device.completed device;
        drops = Device.dropped device;
        resets = Device.conns_reset device;
        p50_ms = to_ms (Stats.Histogram.percentile hist 50.0);
        p99_ms = to_ms (Stats.Histogram.percentile hist 99.0);
        probes_sent =
          (match prober with
          | Some p -> Lb.Probe.Per_worker.sent p
          | None -> 0);
        probes_delayed =
          (match prober with
          | Some p -> Lb.Probe.Per_worker.delayed p
          | None -> 0);
        trace_events = !events;
      })

let print_outcome o =
  Printf.printf "  %-22s completed %6d  drops %4d  resets %4d  p50 %6.2fms  p99 %7.2fms\n"
    o.label o.completed o.drops o.resets o.p50_ms o.p99_ms;
  if o.probes_sent > 0 then
    Printf.printf "  probes: %d sent, %d delayed\n" o.probes_sent o.probes_delayed;
  Printf.printf "  trace: %d events\n" o.trace_events;
  Format.printf "  @[<v>%a@]@." Monitor.pp_report o.monitor
