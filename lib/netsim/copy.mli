(** Data-movement cycle costs for established-connection forwarding.

    The simulator's flows carried only events until the splice mode
    landed; this module prices the {e bytes}.  Two data paths exist
    for an established connection's payload:

    - {b userspace proxy}: every chunk crosses the kernel/user
      boundary twice ([read] from the client socket, [write] to the
      backend socket), paying two syscalls plus two full copies —
      {!proxy_cycles};
    - {b in-kernel splice}: a sockmap redirect moves page references
      between sockets without copying payload ({!splice_cycles}), and
      only the bytes userspace asked to inspect are copied up
      ({!selective_copy_cycles}) — the XLB redirect + Libra selective
      copy combination.

    All results are CPU cycles; [Lb.Cost.cycles_to_time] converts to
    simulated time at the fixed 3 GHz clock.  Table-5-style
    experiments charge these to the kernel component, next to the
    dispatch program's own cycle estimate. *)

val syscall_cycles : int
(** Entry/exit cost of one syscall (600). *)

val copy_cycles_per_kb : int
(** Kernel<->user copy cost per KiB (768, ~0.75 cycles/byte). *)

val splice_base_cycles : int
(** Fixed cost of one sockmap redirect verdict (150). *)

val splice_cycles_per_kb : int
(** Per-KiB page-reference bookkeeping on the splice path (48). *)

val user_copy_cycles : bytes:int -> int
(** One kernel<->user copy of [bytes].  @raise Invalid_argument on a
    negative count (all functions below too). *)

val proxy_cycles : bytes:int -> int
(** Userspace forwarding of [bytes]: two syscalls + two copies. *)

val splice_cycles : bytes:int -> int
(** In-kernel redirect of [bytes]: no payload copy at all. *)

val selective_copy_cycles : bytes:int -> int
(** Copying [bytes] of a spliced chunk up for userspace inspection. *)
