(* Per-byte data-movement cost model for established-connection
   forwarding.  All figures are CPU cycles (Lb.Cost.cycles_to_time
   converts at the simulation's fixed clock), calibrated coarsely
   against the XLB/Libra measurements: a userspace proxy pays two
   syscalls and two full kernel<->user copies per forwarded chunk,
   while a sockmap splice moves page references inside the kernel and
   copies only the bytes userspace explicitly asked to inspect. *)

let syscall_cycles = 600
let copy_cycles_per_kb = 768 (* ~0.75 cycles/byte copyin/copyout *)
let splice_base_cycles = 150 (* sk_redirect verdict + queue move *)
let splice_cycles_per_kb = 48 (* page-reference bookkeeping, no byte copy *)

let check_bytes fn bytes =
  if bytes < 0 then invalid_arg ("Copy." ^ fn ^ ": negative byte count")

let user_copy_cycles ~bytes =
  check_bytes "user_copy_cycles" bytes;
  copy_cycles_per_kb * bytes / 1024

(* read() from the client socket + write() to the backend socket: two
   syscall round trips, each side copying the full payload across the
   kernel/user boundary. *)
let proxy_cycles ~bytes =
  check_bytes "proxy_cycles" bytes;
  (2 * syscall_cycles) + (2 * user_copy_cycles ~bytes)

let splice_cycles ~bytes =
  check_bytes "splice_cycles" bytes;
  splice_base_cycles + (splice_cycles_per_kb * bytes / 1024)

(* The Libra-style selective copy: the redirect stays in-kernel, but
   [bytes] of payload are additionally copied up for inspection (one
   direction, no syscall — the bytes ride an already-mapped ring). *)
let selective_copy_cycles ~bytes = user_copy_cycles ~bytes
