(** eBPF connection-dispatch program — Algorithm 2.

    Builds, as a term of the restricted {!Kernel.Ebpf} language, the
    program Hermes attaches to each port's reuseport group:

    {v
    C   = bpf_map_lookup_elem(M_Sel, key)
    n   = CountNonZeroBits(C)
    if n >= min_selected:
        Nth = reciprocal_scale(4tuple_hash, n) + 1
        ID  = FindNthNonZeroBit(C, Nth)
        return bpf_sk_select_reuseport(M_socket, base + ID)
    else:
        fall back to default reuseport hashing
    v}

    The bitmap is loaded into a register once ([Let_ret]), so the
    popcount and the rank-select always agree even while userspace
    concurrently rewrites the map. *)

val single_group :
  m_sel:Kernel.Ebpf_maps.Array_map.t ->
  m_socket:Kernel.Ebpf_maps.Sockarray.t ->
  min_selected:int ->
  Kernel.Ebpf.prog
(** The ≤64-worker deployment: one bitmap at key 0 of [m_sel], socket
    slots indexed directly by worker id. *)

val dispatch_body :
  m_sel:Kernel.Ebpf_maps.Array_map.t ->
  key:int ->
  m_socket:Kernel.Ebpf_maps.Sockarray.t ->
  base:int ->
  min_selected:int ->
  Kernel.Ebpf.ret
(** One group's dispatch logic: bitmap at [key] in [m_sel], selected
    worker id offset by [base] into [m_socket].  Building block for
    {!Groups.make_prog}. *)

val splice_prog :
  m_splice:Kernel.Ebpf_maps.Sockmap.t -> ?copy:int -> unit -> Kernel.Ebpf.prog
(** The splice-mode data-plane program, attached to established
    connections:

    {v
    key = flow_hash & (size - 1)        (size a power of two)
    if bpf_sk_redirect_map(M_splice, key):
        bpf_sk_copy(copy)               (selective userspace copy)
        return REDIRECT
    else:
        fall back to the userspace proxy path
    v}

    [copy] (default 0) is the per-chunk byte budget copied up for
    inspection; out of [0, {!Kernel.Ebpf.copy_limit}] raises.  With a
    power-of-two sockmap the program verifies with {e zero} residual
    runtime checks — the mask discharges the [Sockmap_key] obligation
    and the constant [copy] the [Copy_len] one. *)
