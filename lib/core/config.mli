(** Hermes tunables.

    Defaults follow the paper: a 5 ms [epoll_wait] timeout so every
    worker runs the scheduler at least every 5 ms (§5.3.2), a θ/Avg
    ratio of 0.5 (Fig. 15's sweet spot), and a kernel-side fallback to
    plain reuseport when fewer than two workers pass the coarse filter
    (Algo 2's [n > 1] test). *)

(** The one source of truth for the simulator's dispatch-mode names:
    command-line parsing ([hermes_sim]), bench matrices and experiment
    tables all go through {!Mode} so a new mode registers once.
    {!Lb.Device.of_mode} maps a mode to its device configuration. *)
module Mode : sig
  type t =
    | Hermes  (** the paper's userspace-directed notification cascade *)
    | Exclusive
    | Reuseport
    | Epoll_rr
    | Wake_all
    | Io_uring_fifo
    | Splice
        (** in-kernel L7 splicing: established connections are handed
            off to a sockmap redirect program; userspace keeps the
            control plane *)

  val all : t list
  (** Every mode, in canonical display order. *)

  val to_string : t -> string

  val of_string : string -> t option
  (** Inverse of {!to_string} ([None] on an unknown name). *)

  val names : string list
  (** [List.map to_string all]. *)
end

type filter = By_time | By_conn | By_event

type t = {
  avail_threshold : Engine.Sim_time.t;
      (** a worker whose event-loop-entry timestamp is older than this
          is considered hung (FilterTime's [Threshold]) *)
  theta_ratio : float;
      (** θ expressed as a fraction of the average (Fig. 15's x-axis);
          FilterCount keeps workers with [value < avg + θ] *)
  min_selected : int;
      (** kernel falls back to hash selection when fewer workers pass
          the coarse filter *)
  epoll_timeout : Engine.Sim_time.t;
  max_events : int;  (** epoll_wait batch bound *)
  filter_order : filter list;
      (** cascade order; the paper's choice is time, then connection
          count, then pending events (§5.2.2) — permutations are an
          ablation *)
  schedule_at_loop_end : bool;
      (** true (paper): run the scheduler after the batch; false is the
          stale-status ablation of §5.3.2 *)
  kernel_bytecode : bool;
      (** run the dispatch program as verified register bytecode
          ({!Kernel.Ebpf_vm}) instead of the expression interpreter —
          same semantics, closer to the metal *)
  kernel_jit : bool;
      (** closure-compile the verified bytecode at attach time
          ({!Kernel.Ebpf_jit}) — same semantics again, zero per-packet
          allocation; implies the bytecode pipeline regardless of
          [kernel_bytecode] *)
}

val default : t

val pp : Format.formatter -> t -> unit
