type t = {
  avail : int Atomic.t array;
  busy_cells : int Atomic.t array;
  conn_cells : int Atomic.t array;
  stalled : bool array;
}

let max_workers = 64

let create ~workers =
  if workers <= 0 || workers > max_workers then
    invalid_arg "Wst.create: workers must be in 1..64";
  {
    avail = Array.init workers (fun _ -> Atomic.make 0);
    busy_cells = Array.init workers (fun _ -> Atomic.make 0);
    conn_cells = Array.init workers (fun _ -> Atomic.make 0);
    stalled = Array.make workers false;
  }

let workers t = Array.length t.avail

let set_stall t w stalled =
  if w < 0 || w >= Array.length t.stalled then
    invalid_arg "Wst.set_stall: worker out of range";
  t.stalled.(w) <- stalled

let stalled t w = t.stalled.(w)

let set_avail t w ~now =
  if not t.stalled.(w) then begin
    Atomic.set t.avail.(w) now;
    if Trace.enabled () then
      Trace.emit (Trace.Wst_write { worker = w; column = Trace.Avail; value = now })
  end

let add_busy t w delta =
  let old = Atomic.fetch_and_add t.busy_cells.(w) delta in
  if Trace.enabled () then
    Trace.emit
      (Trace.Wst_write { worker = w; column = Trace.Busy; value = old + delta })

let add_conn t w delta =
  let old = Atomic.fetch_and_add t.conn_cells.(w) delta in
  if Trace.enabled () then
    Trace.emit
      (Trace.Wst_write { worker = w; column = Trace.Conn; value = old + delta })

let avail_ts t w = Atomic.get t.avail.(w)
let busy t w = Atomic.get t.busy_cells.(w)
let conn t w = Atomic.get t.conn_cells.(w)

type snapshot = {
  times : Engine.Sim_time.t array;
  events : int array;
  conns : int array;
}

let read_all t =
  {
    times = Array.map Atomic.get t.avail;
    events = Array.map Atomic.get t.busy_cells;
    conns = Array.map Atomic.get t.conn_cells;
  }

let read_into t ~times ~events ~conns =
  let n = Array.length t.avail in
  if Array.length times < n || Array.length events < n || Array.length conns < n
  then invalid_arg "Wst.read_into: buffers smaller than the table";
  for w = 0 to n - 1 do
    Array.unsafe_set times w (Atomic.get (Array.unsafe_get t.avail w));
    Array.unsafe_set events w (Atomic.get (Array.unsafe_get t.busy_cells w));
    Array.unsafe_set conns w (Atomic.get (Array.unsafe_get t.conn_cells w))
  done;
  n
