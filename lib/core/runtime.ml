type t = {
  cfg : Config.t;
  grouping : Groups.t;
  metric_hooks : Metrics.t array;
  sched_scratch : Scheduler.scratch array;  (* one per worker, reused *)
  mutable sync_defer : ((unit -> unit) -> unit) option;
  mutable scheduler_cycles : int;
  mutable scheduler_calls : int;
  mutable sync_calls : int;
  mutable pass_sum : int;
  mutable considered_sum : int;
}

let syscall_cost_cycles = 1500

(* Minimum virtual latency of any cross-shard interaction — the
   lookahead that bounds how far the cluster coordinator may run one
   shard ahead of another.  Mirrors the modelled client RTT so a
   control->device message never undercuts the slowest in-shard path. *)
let default_cross_shard_latency = Engine.Sim_time.us 100
let cross_shard_latency_hook = ref default_cross_shard_latency

let cross_shard_latency () = !cross_shard_latency_hook

let set_cross_shard_latency d =
  if d <= 0 then invalid_arg "Runtime.set_cross_shard_latency: must be positive";
  cross_shard_latency_hook := d

let create ?(group_size = 64) ?(select_mode = Groups.By_flow_hash) ~config
    ~workers () =
  let grouping = Groups.create ~workers ~group_size ~mode:select_mode in
  let metric_hooks =
    Array.init workers (fun w ->
        let g, within = Groups.group_of_worker grouping w in
        Metrics.create ~wst:(Groups.wst grouping g) ~worker:within)
  in
  {
    cfg = config;
    grouping;
    metric_hooks;
    sched_scratch = Array.init workers (fun _ -> Scheduler.make_scratch ());
    sync_defer = None;
    scheduler_cycles = 0;
    scheduler_calls = 0;
    sync_calls = 0;
    pass_sum = 0;
    considered_sum = 0;
  }

let config t = t.cfg
let workers t = Groups.workers t.grouping
let groups t = t.grouping
let hooks t w = t.metric_hooks.(w)

let make_prog t ~m_socket =
  Groups.make_prog t.grouping ~m_socket ~min_selected:t.cfg.min_selected

let set_sync_defer t defer = t.sync_defer <- defer

let schedule_and_sync t ~worker ~now =
  let g, _ = Groups.group_of_worker t.grouping worker in
  let scratch = t.sched_scratch.(worker) in
  Scheduler.run scratch ~config:t.cfg ~wst:(Groups.wst t.grouping g) ~now;
  let result = Scheduler.result scratch in
  (* The bitmap push is a bpf() syscall; under an injected map-sync
     delay the store lands later, and the kernel keeps dispatching on
     the previous bitmap in the interim. *)
  let m_sel = Groups.m_sel t.grouping in
  (match t.sync_defer with
  | None -> Kernel.Ebpf_maps.Syscall.update_elem m_sel g result.bitmap
  | Some defer ->
    defer (fun () -> Kernel.Ebpf_maps.Syscall.update_elem m_sel g result.bitmap));
  t.scheduler_cycles <- t.scheduler_cycles + result.cycles;
  t.scheduler_calls <- t.scheduler_calls + 1;
  t.sync_calls <- t.sync_calls + 1;
  t.pass_sum <- t.pass_sum + result.passed;
  t.considered_sum <- t.considered_sum + result.total;
  result

let mark_dead t ~worker =
  let g, within = Groups.group_of_worker t.grouping worker in
  (* A timestamp of 0 is always older than any positive threshold once
     the clock has advanced past it. *)
  Wst.set_avail (Groups.wst t.grouping g) within ~now:0

type accounting = {
  counter_cycles : int;
  scheduler_cycles : int;
  syscall_cycles : int;
  scheduler_calls : int;
  sync_calls : int;
  pass_sum : int;
  considered_sum : int;
}

let accounting t =
  {
    counter_cycles =
      Array.fold_left (fun acc h -> acc + Metrics.cycles h) 0 t.metric_hooks;
    scheduler_cycles = t.scheduler_cycles;
    syscall_cycles = t.sync_calls * syscall_cost_cycles;
    scheduler_calls = t.scheduler_calls;
    sync_calls = t.sync_calls;
    pass_sum = t.pass_sum;
    considered_sum = t.considered_sum;
  }

let pass_ratio (t : t) =
  if t.considered_sum = 0 then 0.0
  else float_of_int t.pass_sum /. float_of_int t.considered_sum

let reset_accounting t =
  Array.iter Metrics.reset_accounting t.metric_hooks;
  t.scheduler_cycles <- 0;
  t.scheduler_calls <- 0;
  t.sync_calls <- 0;
  t.pass_sum <- 0;
  t.considered_sum <- 0
