type result = {
  bitmap : int64;
  passed : int;
  total : int;
  after_time : int;
  cycles : int;
}

(* Cycle model: 3 atomic loads per worker for the snapshot, ~4 cycles of
   arithmetic per worker per filter stage, plus fixed overhead. *)
let cycle_cost ~workers ~stages = 60 + (workers * ((3 * 4) + (stages * 4)))

(* ------------------------------------------------------------------ *)
(* Bool-array cascade primitives.  These remain the unit-testable /
   ablation-facing form of the two filters, and power [Ref] below.    *)
(* ------------------------------------------------------------------ *)

let filter_time ~threshold ~now ~times mask =
  Array.iteri
    (fun i alive ->
      if alive && Engine.Sim_time.sub now times.(i) >= threshold then
        mask.(i) <- false)
    mask

(* As [filter_count], but returns the cutoff it applied (None when no
   worker was live) so the trace can expose the effective avg + θ. *)
let filter_count_cutoff ~theta_ratio ~values mask =
  let sum = ref 0 and live = ref 0 in
  Array.iteri
    (fun i alive ->
      if alive then begin
        sum := !sum + values.(i);
        incr live
      end)
    mask;
  if !live > 0 then begin
    let avg = float_of_int !sum /. float_of_int !live in
    (* theta scales with the average (Fig. 15's theta/Avg knob) but
       never collapses below one unit of slack, so an idle system
       (all counters zero) still passes everyone instead of
       degenerating to the hash fallback. *)
    let theta = Float.max 1.0 (theta_ratio *. avg) in
    let cutoff = avg +. theta in
    Array.iteri
      (fun i alive -> if alive && float_of_int values.(i) >= cutoff then mask.(i) <- false)
      mask;
    Some cutoff
  end
  else None

let filter_count ~theta_ratio ~values mask =
  ignore (filter_count_cutoff ~theta_ratio ~values mask)

let count_live mask =
  Array.fold_left (fun acc alive -> if alive then acc + 1 else acc) 0 mask

let mask_bits mask =
  let bm = ref 0L in
  Array.iteri (fun i alive -> if alive then bm := Kernel.Bitops.set_bit !bm i) mask;
  !bm

let trace_stage stage ~cutoff mask =
  Trace.emit
    (Trace.Sched_filter
       { stage; cutoff; survivors = mask_bits mask; live = count_live mask })

module Ref = struct
  let schedule ~(config : Config.t) ~wst ~now =
    let snapshot = Wst.read_all wst in
    let total = Array.length snapshot.times in
    let mask = Array.make total true in
    let after_time = ref total in
    List.iter
      (fun filter ->
        match filter with
        | Config.By_time ->
          filter_time ~threshold:config.avail_threshold ~now ~times:snapshot.times mask;
          after_time := count_live mask;
          if Trace.enabled () then
            trace_stage "time" ~cutoff:(float_of_int config.avail_threshold) mask
        | Config.By_conn ->
          let cutoff =
            filter_count_cutoff ~theta_ratio:config.theta_ratio ~values:snapshot.conns
              mask
          in
          if Trace.enabled () then
            trace_stage "conn" ~cutoff:(Option.value cutoff ~default:0.0) mask
        | Config.By_event ->
          let cutoff =
            filter_count_cutoff ~theta_ratio:config.theta_ratio ~values:snapshot.events
              mask
          in
          if Trace.enabled () then
            trace_stage "event" ~cutoff:(Option.value cutoff ~default:0.0) mask)
      config.filter_order;
    let bitmap = mask_bits mask in
    let passed = count_live mask in
    if Trace.enabled () then
      Trace.emit
        (Trace.Sched_result { bitmap; passed; total; after_time = !after_time });
    {
      bitmap;
      passed;
      total;
      after_time = !after_time;
      cycles = cycle_cost ~workers:total ~stages:(List.length config.filter_order);
    }
end

(* ------------------------------------------------------------------ *)
(* Bitmap-native engine.

   The per-event-loop path (§5.3.2) cannot afford Ref's per-invocation
   garbage: three snapshot arrays, a bool mask, closures and refs at
   every stage.  This engine keeps the survivor mask as two native-int
   halves of the 64-bit dispatch bitmap (OCaml ints are 63-bit, so bit
   63 does not fit one immediate; an [int64] field would box on every
   store) inside a caller-owned [scratch], reads the WST through
   [Wst.read_into] into scratch-owned buffers, and walks the cascade
   with top-level recursion — no closures, no refs, no floats stored.
   A trace-disabled [run] therefore allocates zero minor-heap words;
   the [int64] bitmap is materialised only at observation points
   (tracing, [bitmap], [result]).

   Equivalence with [Ref] is structural: identical integer sums,
   identical float cutoff arithmetic (see the [Float.max] note below),
   identical per-worker comparisons — so identical bitmaps and
   identical trace events, which the qcheck differential suite and the
   golden traces both pin. *)
(* ------------------------------------------------------------------ *)

type scratch = {
  times : Engine.Sim_time.t array;
  events : int array;
  conns : int array;
  mutable lo : int;  (** survivor-mask bits 0..31 *)
  mutable hi : int;  (** survivor-mask bits 32..63 *)
  mutable n : int;
  mutable stages : int;
  mutable at : int;  (** survivors of FilterTime *)
  mutable sum : int;  (** FilterCount scratch: Σ value over live *)
  mutable live : int;  (** FilterCount scratch: live count *)
}

let make_scratch () =
  {
    times = Array.make Wst.max_workers 0;
    events = Array.make Wst.max_workers 0;
    conns = Array.make Wst.max_workers 0;
    lo = 0;
    hi = 0;
    n = 0;
    stages = 0;
    at = 0;
    sum = 0;
    live = 0;
  }

let live_of s = Kernel.Bitops.popcount32 s.lo + Kernel.Bitops.popcount32 s.hi

let bitmap_of s =
  Int64.logor (Int64.of_int s.lo) (Int64.shift_left (Int64.of_int s.hi) 32)

let filter_time_into s ~threshold ~now =
  let nlo = if s.n < 32 then s.n else 32 in
  for i = 0 to nlo - 1 do
    if
      s.lo land (1 lsl i) <> 0
      && now - Array.unsafe_get s.times i >= threshold
    then s.lo <- s.lo land lnot (1 lsl i)
  done;
  for i = 32 to s.n - 1 do
    if
      s.hi land (1 lsl (i - 32)) <> 0
      && now - Array.unsafe_get s.times i >= threshold
    then s.hi <- s.hi land lnot (1 lsl (i - 32))
  done

let sum_live_into s (values : int array) =
  s.sum <- 0;
  s.live <- 0;
  let nlo = if s.n < 32 then s.n else 32 in
  for i = 0 to nlo - 1 do
    if s.lo land (1 lsl i) <> 0 then begin
      s.sum <- s.sum + Array.unsafe_get values i;
      s.live <- s.live + 1
    end
  done;
  for i = 32 to s.n - 1 do
    if s.hi land (1 lsl (i - 32)) <> 0 then begin
      s.sum <- s.sum + Array.unsafe_get values i;
      s.live <- s.live + 1
    end
  done

(* The cutoff floats live and die in registers: storing one in the
   (mixed-field) scratch would box it, so the trace path recomputes it
   from [s.sum]/[s.live], which [filter_count_into] leaves intact. *)
let cutoff_of s ~theta_ratio =
  let avg = float_of_int s.sum /. float_of_int s.live in
  let p = theta_ratio *. avg in
  (* [if p > 1.0 then p else 1.0] is bit-identical to Ref's
     [Float.max 1.0 p] for the reachable inputs (finite, >= 0.) —
     written out because calling [Float.max] would box [p]. *)
  let theta = if p > 1.0 then p else 1.0 in
  avg +. theta

let filter_count_into s ~theta_ratio (values : int array) =
  sum_live_into s values;
  if s.live > 0 then begin
    let avg = float_of_int s.sum /. float_of_int s.live in
    let p = theta_ratio *. avg in
    let theta = if p > 1.0 then p else 1.0 in
    let cutoff = avg +. theta in
    let nlo = if s.n < 32 then s.n else 32 in
    for i = 0 to nlo - 1 do
      if
        s.lo land (1 lsl i) <> 0
        && float_of_int (Array.unsafe_get values i) >= cutoff
      then s.lo <- s.lo land lnot (1 lsl i)
    done;
    for i = 32 to s.n - 1 do
      if
        s.hi land (1 lsl (i - 32)) <> 0
        && float_of_int (Array.unsafe_get values i) >= cutoff
      then s.hi <- s.hi land lnot (1 lsl (i - 32))
    done
  end

let trace_count_stage s ~theta_ratio ~stage =
  let cutoff = if s.live > 0 then cutoff_of s ~theta_ratio else 0.0 in
  Trace.emit
    (Trace.Sched_filter
       { stage; cutoff; survivors = bitmap_of s; live = live_of s })

let rec run_stages s ~(config : Config.t) ~now stages =
  match stages with
  | [] -> ()
  | stage :: rest ->
    (match stage with
    | Config.By_time ->
      filter_time_into s ~threshold:config.avail_threshold ~now;
      s.at <- live_of s;
      if Trace.enabled () then
        Trace.emit
          (Trace.Sched_filter
             {
               stage = "time";
               cutoff = float_of_int config.avail_threshold;
               survivors = bitmap_of s;
               live = s.at;
             })
    | Config.By_conn ->
      filter_count_into s ~theta_ratio:config.theta_ratio s.conns;
      if Trace.enabled () then
        trace_count_stage s ~theta_ratio:config.theta_ratio ~stage:"conn"
    | Config.By_event ->
      filter_count_into s ~theta_ratio:config.theta_ratio s.events;
      if Trace.enabled () then
        trace_count_stage s ~theta_ratio:config.theta_ratio ~stage:"event");
    run_stages s ~config ~now rest

let run s ~(config : Config.t) ~wst ~now =
  let n = Wst.read_into wst ~times:s.times ~events:s.events ~conns:s.conns in
  s.n <- n;
  s.stages <- List.length config.filter_order;
  if n <= 32 then begin
    s.lo <- (1 lsl n) - 1;
    s.hi <- 0
  end
  else begin
    s.lo <- (1 lsl 32) - 1;
    s.hi <- (1 lsl (n - 32)) - 1
  end;
  s.at <- n;
  run_stages s ~config ~now config.filter_order;
  if Trace.enabled () then
    Trace.emit
      (Trace.Sched_result
         { bitmap = bitmap_of s; passed = live_of s; total = n; after_time = s.at })

let passed s = live_of s
let total s = s.n
let after_time s = s.at
let bitmap s = bitmap_of s
let cycles s = cycle_cost ~workers:s.n ~stages:s.stages

let result s =
  {
    bitmap = bitmap_of s;
    passed = live_of s;
    total = s.n;
    after_time = s.at;
    cycles = cycles s;
  }

let schedule ~config ~wst ~now =
  let s = make_scratch () in
  run s ~config ~wst ~now;
  result s
