type result = {
  bitmap : int64;
  passed : int;
  total : int;
  after_time : int;
  cycles : int;
}

let filter_time ~threshold ~now ~times mask =
  Array.iteri
    (fun i alive ->
      if alive && Engine.Sim_time.sub now times.(i) >= threshold then
        mask.(i) <- false)
    mask

(* As [filter_count], but returns the cutoff it applied (None when no
   worker was live) so the trace can expose the effective avg + θ. *)
let filter_count_cutoff ~theta_ratio ~values mask =
  let sum = ref 0 and live = ref 0 in
  Array.iteri
    (fun i alive ->
      if alive then begin
        sum := !sum + values.(i);
        incr live
      end)
    mask;
  if !live > 0 then begin
    let avg = float_of_int !sum /. float_of_int !live in
    (* theta scales with the average (Fig. 15's theta/Avg knob) but
       never collapses below one unit of slack, so an idle system
       (all counters zero) still passes everyone instead of
       degenerating to the hash fallback. *)
    let theta = Float.max 1.0 (theta_ratio *. avg) in
    let cutoff = avg +. theta in
    Array.iteri
      (fun i alive -> if alive && float_of_int values.(i) >= cutoff then mask.(i) <- false)
      mask;
    Some cutoff
  end
  else None

let filter_count ~theta_ratio ~values mask =
  ignore (filter_count_cutoff ~theta_ratio ~values mask)

let count_live mask =
  Array.fold_left (fun acc alive -> if alive then acc + 1 else acc) 0 mask

let mask_bits mask =
  let bm = ref 0L in
  Array.iteri (fun i alive -> if alive then bm := Kernel.Bitops.set_bit !bm i) mask;
  !bm

let trace_stage stage ~cutoff mask =
  Trace.emit
    (Trace.Sched_filter
       { stage; cutoff; survivors = mask_bits mask; live = count_live mask })

(* Cycle model: 3 atomic loads per worker for the snapshot, ~4 cycles of
   arithmetic per worker per filter stage, plus fixed overhead. *)
let cycle_cost ~workers ~stages = 60 + (workers * ((3 * 4) + (stages * 4)))

let schedule ~(config : Config.t) ~wst ~now =
  let snapshot = Wst.read_all wst in
  let total = min (Array.length snapshot.times) 64 in
  let mask = Array.make total true in
  let after_time = ref total in
  List.iter
    (fun filter ->
      match filter with
      | Config.By_time ->
        filter_time ~threshold:config.avail_threshold ~now ~times:snapshot.times mask;
        after_time := count_live mask;
        if Trace.enabled () then
          trace_stage "time" ~cutoff:(float_of_int config.avail_threshold) mask
      | Config.By_conn ->
        let cutoff =
          filter_count_cutoff ~theta_ratio:config.theta_ratio ~values:snapshot.conns
            mask
        in
        if Trace.enabled () then
          trace_stage "conn" ~cutoff:(Option.value cutoff ~default:0.0) mask
      | Config.By_event ->
        let cutoff =
          filter_count_cutoff ~theta_ratio:config.theta_ratio ~values:snapshot.events
            mask
        in
        if Trace.enabled () then
          trace_stage "event" ~cutoff:(Option.value cutoff ~default:0.0) mask)
    config.filter_order;
  let bitmap = mask_bits mask in
  let passed = count_live mask in
  if Trace.enabled () then
    Trace.emit
      (Trace.Sched_result { bitmap; passed; total; after_time = !after_time });
  {
    bitmap;
    passed;
    total;
    after_time = !after_time;
    cycles = cycle_cost ~workers:total ~stages:(List.length config.filter_order);
  }
