(** Hermes runtime: one instance per LB device.

    Owns the grouped WSTs, the selection map, and per-worker metric
    hooks; builds the dispatch program for each listening port; and
    runs the worker-triggered distributed scheduler
    ([schedule_and_sync], Fig. 9 line 20).  It also keeps the
    component-level accounting (counter / scheduler / syscall cycles,
    scheduler call counts, coarse-filter pass ratios) that Table 5 and
    Fig. 14 report. *)

type t

val create :
  ?group_size:int ->
  ?select_mode:Groups.select_mode ->
  config:Config.t ->
  workers:int ->
  unit ->
  t
(** Defaults: [group_size = 64] (single group for ≤64 workers),
    flow-hash level-1 selection. *)

val config : t -> Config.t
val workers : t -> int
val groups : t -> Groups.t

val hooks : t -> int -> Metrics.t
(** The Fig. 9 instrumentation hooks for a global worker id. *)

val make_prog :
  t -> m_socket:Kernel.Ebpf_maps.Sockarray.t -> Kernel.Ebpf.prog
(** Dispatch program for one port; [m_socket] indexed by global worker
    id. *)

val schedule_and_sync : t -> worker:int -> now:Engine.Sim_time.t -> Scheduler.result
(** Run Algo 1 over the calling worker's group and push the bitmap to
    the kernel through a counted map-update syscall.  The scheduler
    pass itself runs on the calling worker's reusable
    {!Scheduler.scratch}, so with tracing disabled it allocates
    nothing; only the returned summary record and the pushed [int64]
    are fresh. *)

val mark_dead : t -> worker:int -> unit
(** Force a worker's availability timestamp far into the past so
    FilterTime excludes it immediately (used when a crash is
    detected). *)

val set_sync_defer : t -> ((unit -> unit) -> unit) option -> unit
(** Fault hook for the map-sync path.  With [Some defer] installed,
    every bitmap push of [schedule_and_sync] is routed through
    [defer] instead of landing immediately — the chaos harness passes
    a simulator [schedule_after] so the kernel keeps dispatching on
    the previous bitmap for the injected delay, the benign staleness
    window §5.4 argues the design tolerates.  [None] (the default)
    restores the synchronous push.  The syscall is counted when the
    store lands, not when it is issued. *)

type accounting = {
  counter_cycles : int;  (** Table 5 "Counter" *)
  scheduler_cycles : int;  (** Table 5 "Scheduler" *)
  syscall_cycles : int;  (** Table 5 "System call" *)
  scheduler_calls : int;  (** Fig. 14 call frequency numerator *)
  sync_calls : int;
  pass_sum : int;  (** sum of coarse-filter survivors over calls *)
  considered_sum : int;  (** sum of workers considered over calls *)
}

val accounting : t -> accounting

val pass_ratio : t -> float
(** Average fraction of workers passing the coarse filter (Fig. 14). *)

val reset_accounting : t -> unit

val syscall_cost_cycles : int
(** Modelled cost of one bpf() map-update syscall. *)

val cross_shard_latency : unit -> Engine.Sim_time.t
(** Minimum virtual latency of any cross-shard interaction (default
    100 µs, the modelled client RTT).  The sharded cluster uses this
    as its conservative-synchronization lookahead: the coordinator
    advances all shards in rounds of exactly this width, and every
    cross-shard message is stamped at least this far in the future, so
    no shard can ever receive a message inside a window it has already
    executed. *)

val set_cross_shard_latency : Engine.Sim_time.t -> unit
(** Override the lookahead before building a cluster (the CLI's
    [--lookahead]).  Larger values mean fewer synchronization rounds
    but slower control-plane reaction — cross-shard message latency is
    pinned to the lookahead, so this is a {e model} parameter: two
    runs compare byte-for-byte only under the same lookahead (domain
    count, by contrast, never affects the trace).
    @raise Invalid_argument if the latency is not positive. *)
