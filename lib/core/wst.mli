(** Worker Status Table.

    The WST is the shared-memory structure of §5.3.1: one column per
    worker, three rows — the timestamp of the worker's last entry into
    its epoll event loop, its pending-event count, and its accumulated
    connection count.  The memory is partitioned by worker (each worker
    writes only its own column) and every cell is an [Atomic.t], so
    updates and the scheduler's full-table reads need no locks and
    never observe torn values.  Readers may see a mix of old and new
    columns — the benign inconsistency the paper argues is
    acceptable. *)

type t

val max_workers : int
(** 64 — worker ids index bits of the scheduler's dispatch bitmap. *)

val create : workers:int -> t
(** All availability timestamps start at 0, counts at 0.
    @raise Invalid_argument unless [workers] is in 1..{!max_workers}:
    a larger table would silently lose workers at dispatch time, since
    the selection bitmap has exactly 64 bits. *)

val workers : t -> int

(** {1 Writers — called only by worker [w] itself} *)

val set_avail : t -> int -> now:Engine.Sim_time.t -> unit
(** Record the worker's entry into its event loop (Fig. 9 line 12).
    Dropped silently while the column is {!set_stall}ed. *)

val add_busy : t -> int -> int -> unit
(** [add_busy t w delta] — positive on epoll_wait return, -1 per
    handled event (Fig. 9 lines 14/18). *)

val add_conn : t -> int -> int -> unit
(** +1 on accept, -1 on close (Fig. 9 lines 25/37). *)

(** {1 Fault injection} *)

val set_stall : t -> int -> bool -> unit
(** [set_stall t w true] makes worker [w]'s availability-timestamp
    writes stop landing — the shared-memory write-stall fault of the
    chaos harness: the worker keeps running, but its column freezes,
    so the Algo 1 time filter must exclude it within one staleness
    window even though the process is alive.  Only the timestamp is
    gated: the busy/conn cells are deltas, and dropping deltas would
    skew the column permanently, breaking the recovery invariant this
    fault exists to test.  [set_stall t w false] lifts the stall; the
    next [set_avail] lands and re-admits the worker.
    @raise Invalid_argument if [w] is out of range. *)

val stalled : t -> int -> bool

(** {1 Readers} *)

val avail_ts : t -> int -> Engine.Sim_time.t
val busy : t -> int -> int
val conn : t -> int -> int

type snapshot = {
  times : Engine.Sim_time.t array;
  events : int array;
  conns : int array;
}

val read_all : t -> snapshot
(** The scheduler's Read_SHM (Algo 1 line 3): a lock-free sweep of all
    columns.  Each cell read is individually atomic; the snapshot as a
    whole is not, by design. *)

val read_into : t -> times:Engine.Sim_time.t array -> events:int array -> conns:int array -> int
(** [read_all] into caller-owned buffers — the allocation-free sweep
    the per-event-loop scheduler pass uses with its reusable scratch.
    Fills index [0..workers-1] of each buffer and returns the worker
    count; slack beyond that is left untouched.
    @raise Invalid_argument if any buffer is shorter than the table. *)
