module Mode = struct
  type t =
    | Hermes
    | Exclusive
    | Reuseport
    | Epoll_rr
    | Wake_all
    | Io_uring_fifo
    | Splice

  let all = [ Hermes; Exclusive; Reuseport; Epoll_rr; Wake_all; Io_uring_fifo; Splice ]

  let to_string = function
    | Hermes -> "hermes"
    | Exclusive -> "exclusive"
    | Reuseport -> "reuseport"
    | Epoll_rr -> "epoll-rr"
    | Wake_all -> "wake-all"
    | Io_uring_fifo -> "io_uring-fifo"
    | Splice -> "splice"

  let of_string s = List.find_opt (fun m -> String.equal (to_string m) s) all
  let names = List.map to_string all
end

type filter = By_time | By_conn | By_event

type t = {
  avail_threshold : Engine.Sim_time.t;
  theta_ratio : float;
  min_selected : int;
  epoll_timeout : Engine.Sim_time.t;
  max_events : int;
  filter_order : filter list;
  schedule_at_loop_end : bool;
  kernel_bytecode : bool;
  kernel_jit : bool;
}

let default =
  {
    avail_threshold = Engine.Sim_time.ms 100;
    theta_ratio = 0.5;
    min_selected = 2;
    epoll_timeout = Engine.Sim_time.ms 5;
    max_events = 64;
    filter_order = [ By_time; By_conn; By_event ];
    schedule_at_loop_end = true;
    kernel_bytecode = false;
    kernel_jit = false;
  }

let filter_name = function
  | By_time -> "time"
  | By_conn -> "conn"
  | By_event -> "event"

let pp fmt t =
  Format.fprintf fmt
    "{thr=%a theta=%.2f min_sel=%d timeout=%a max_ev=%d order=[%s] at_end=%b vm=%b jit=%b}"
    Engine.Sim_time.pp t.avail_threshold t.theta_ratio t.min_selected
    Engine.Sim_time.pp t.epoll_timeout t.max_events
    (String.concat ";" (List.map filter_name t.filter_order))
    t.schedule_at_loop_end t.kernel_bytecode t.kernel_jit
