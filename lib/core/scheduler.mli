(** Cascading worker filter — Algorithm 1.

    [schedule] reads the WST and applies the configured filter cascade:
    FilterTime drops workers whose event-loop timestamp is stale
    (hung/crashed), then FilterCount keeps workers whose connection
    count — and, in the next stage, pending-event count — is below the
    surviving set's average plus the θ offset.  The survivors are
    encoded as a 64-bit bitmap (bit i = worker i selected) ready for
    one atomic eBPF-map store.

    Two engines share the cascade semantics.  The bitmap-native engine
    ([run] over a reusable {!scratch}) keeps the survivor mask as two
    native-int bitmap halves and fills caller-owned snapshot buffers
    via {!Wst.read_into}; with tracing disabled a pass allocates zero
    minor-heap words — §5.3.2's requirement of logic embedded in every
    event loop, taken literally.  {!Ref} is the original bool-array
    implementation, kept as the differential baseline: both produce
    bit-identical bitmaps, cutoffs and trace events on every input,
    which the qcheck suite pins. *)

type result = {
  bitmap : int64;  (** coarse-filter survivors *)
  passed : int;  (** popcount of [bitmap] *)
  total : int;  (** workers considered *)
  after_time : int;  (** survivors of FilterTime (diagnostics) *)
  cycles : int;  (** estimated cycle cost of this invocation *)
}

(** {1 Zero-allocation engine} *)

type scratch
(** Reusable per-scheduler state: snapshot buffers sized for
    {!Wst.max_workers} plus the bitmap mask.  Single-threaded by
    construction — one per worker event loop. *)

val make_scratch : unit -> scratch

val run : scratch -> config:Config.t -> wst:Wst.t -> now:Engine.Sim_time.t -> unit
(** One scheduler invocation over a whole WST (a worker group under
    two-level grouping), leaving the outcome in the scratch.  With
    tracing disabled this performs zero minor-heap allocation. *)

(** Outcome of the last [run] on this scratch.  [bitmap] boxes its
    [int64] on each call; the other accessors are allocation-free. *)

val bitmap : scratch -> int64
val passed : scratch -> int
val total : scratch -> int
val after_time : scratch -> int
val cycles : scratch -> int

val result : scratch -> result
(** The last [run]'s outcome as a fresh {!result} record. *)

val schedule :
  config:Config.t -> wst:Wst.t -> now:Engine.Sim_time.t -> result
(** [run] + [result] on a fresh scratch — the convenient allocating
    form for tests and cold callers. *)

(** {1 Reference engine} *)

module Ref : sig
  val schedule :
    config:Config.t -> wst:Wst.t -> now:Engine.Sim_time.t -> result
  (** The original bool-array implementation: allocates a snapshot and
      mask per call.  Semantically identical to {!schedule} (same
      bitmaps, same trace events) — kept as the qcheck differential
      baseline and the benchmark's before-side. *)
end

(** {1 Cascade primitives} *)

val filter_time :
  threshold:Engine.Sim_time.t ->
  now:Engine.Sim_time.t ->
  times:Engine.Sim_time.t array ->
  bool array ->
  unit
(** FilterTime (Algo 1 lines 9-10) over a live mask, in place.
    Exposed for unit tests and ablations. *)

val filter_count : theta_ratio:float -> values:int array -> bool array -> unit
(** FilterCount (Algo 1 lines 11-13): computes the average over live
    workers, keeps those with [value < avg + theta] where
    [theta = max 1 (theta_ratio * avg)] — the floor keeps an idle
    system (average zero) from filtering out every worker. *)
