open Kernel.Ebpf

let dispatch_body ~m_sel ~key ~m_socket ~base ~min_selected =
  if min_selected < 1 then invalid_arg "Dispatch: min_selected must be >= 1";
  Let_ret
    ( "C",
      Lookup (m_sel, Const (Int64.of_int key)),
      Let_ret
        ( "n",
          Popcount (Var "C"),
          If
            ( Ge,
              Var "n",
              Const (Int64.of_int min_selected),
              Select
                ( m_socket,
                  Add
                    ( Const (Int64.of_int base),
                      Find_nth_set
                        ( Var "C",
                          Add (Reciprocal_scale (Flow_hash, Var "n"), Const 1L)
                        ) ) ),
              Fallback ) ) )

let single_group ~m_sel ~m_socket ~min_selected =
  {
    name = "hermes_dispatch";
    body = dispatch_body ~m_sel ~key:0 ~m_socket ~base:0 ~min_selected;
  }

let splice_prog ~m_splice ?(copy = 0) () =
  if copy < 0 || copy > Kernel.Ebpf.copy_limit then
    invalid_arg "Dispatch.splice_prog: copy out of range";
  let size = Kernel.Ebpf_maps.Sockmap.size m_splice in
  (* Key the sockmap by flow hash, masked/reduced so the verifier can
     prove the bounds statically (a power-of-two size verifies with
     zero residual runtime checks: the And pins the tnum). *)
  let key =
    if size land (size - 1) = 0 then
      Band (Flow_hash, Const (Int64.of_int (size - 1)))
    else Mod (Band (Flow_hash, Const 0x7FFFFFFFL), Const (Int64.of_int size))
  in
  {
    name = "hermes_splice";
    body = Redirect (m_splice, key, Const (Int64.of_int copy), Fallback);
  }
