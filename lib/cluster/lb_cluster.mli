(** A cluster of L7 LB devices behind one VIP (§6.1's "8 LBs in total
    for load sharing and failure recovery").

    The L4 tier spreads new connections across the member devices by
    flow hash (ECMP-style); members can be added, put into draining
    (no new connections, existing ones finish — how canary rollouts
    phase VMs out), and removed once empty.  [rolling_replace]
    implements the §6.2 canary: add a new-version device, drain an
    old one, wait, remove, repeat.

    {2 Sharded execution}

    Every member device owns a private {!Engine.Sim} and runs as one
    logical process; the caller's simulator is the control process that
    carries the L4 spread, the rollout logic and the aggregate
    counters.  Cluster<->device interaction crosses process boundaries
    as timestamped messages with a fixed [lookahead] latency, and an
    {!Engine.Coordinator} advances the fleet in lookahead-wide rounds
    (conservative synchronization) from a recurring event on the
    control simulator — so driving the control sim with
    [Sim.run_until] drives the whole fleet.  Do {e not} drive it with
    [Sim.run]: the round event re-arms itself, so the queue never
    empties before {!shutdown}.

    [?shards] sets how many OCaml domains execute member rounds; it
    never affects behaviour, only wall-clock.  Traces, counters and
    schedules are functions of the logical decomposition alone, which
    the differential harness pins by comparing {!merged_trace} output
    byte-for-byte across shard counts.  Touching a device directly
    (via {!device}) mutates that member's simulator from the control
    domain and is only safe under [shards = 1] — the default, and what
    the single-threaded tests and examples use. *)

type t

val create :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  tenants:Netsim.Tenant.t array ->
  devices:int ->
  mode:Lb.Device.mode ->
  ?workers:int ->
  ?shards:int ->
  ?lookahead:Engine.Sim_time.t ->
  ?trace_capacity:int ->
  unit ->
  t
(** A cluster of [devices] identical members, all started.  [shards]
    (default 1) is the executing domain count; [lookahead] (default
    {!Hermes.Runtime.cross_shard_latency}[ ()]) the cross-process
    message latency and round width; [trace_capacity] (default off)
    gives every member a private trace ring of that many records for
    {!merged_trace}.  Call {!shutdown} when done if [shards > 1] —
    OCaml caps live domains, so leaked pools starve later clusters. *)

val size : t -> int
(** Members currently in the cluster (serving or draining). *)

val in_rotation : t -> int
(** Members accepting new connections. *)

val device : t -> int -> Lb.Device.t
(** Member by slot.  Direct device access is safe only under
    [shards = 1] (see above).
    @raise Invalid_argument for a removed slot. *)

val devices : t -> (int * Lb.Device.t) list
(** Live [(slot, device)] pairs. *)

val lookahead : t -> Engine.Sim_time.t
(** The cross-process message latency / synchronization round width. *)

type conn_ref = {
  cluster : t;
  slot : int;  (** member slot the connection landed on *)
  member : Lb.Device.t;
  conn : Lb.Conn.t;
}
(** A cluster-level connection handle: the member device that accepted
    it plus the connection itself. *)

type events = {
  established : conn_ref -> unit;
  request_done : conn_ref -> Lb.Request.t -> unit;
  closed : conn_ref -> unit;
  reset : conn_ref -> unit;
  dispatch_failed : unit -> unit;
}
(** Control-side connection callbacks.  They fire one [lookahead]
    after the device-side event (the marshalling latency back to the
    control process). *)

val null_events : events

val connect : t -> tenant:int -> events:events -> unit
(** L4 spread: pick an in-rotation member pseudo-randomly and dispatch
    through it one [lookahead] later.  An empty rotation is a
    control-plane fact: [dispatch_failed] fires synchronously, before
    any cross-process hop. *)

val send : conn_ref -> Lb.Request.t -> unit
(** Deliver a request on the connection one [lookahead] later (fire
    and forget — a request refused device-side, e.g. after a crash,
    surfaces as a missing [request_done], not a return value). *)

val close : conn_ref -> unit

val run_on : t -> slot:int -> (Lb.Device.t -> unit) -> unit
(** Run an arbitrary action against a member {e on the member's own
    process}, one [lookahead] from now — the cross-shard form of
    direct device access, safe under any shard count.  Fault
    injections use this: [run_on cluster ~slot (fun dev ->
    Faults.Inject.arm ~device:dev ~plan)] arms the plan on the
    member's simulator.  The action is dropped (with the member) if
    the slot is removed before delivery.
    @raise Invalid_argument if the slot is already removed. *)

val fresh_id : t -> int
(** Cluster-wide request-id allocator (per-cluster counter). *)

val add_device : t -> mode:Lb.Device.mode -> ?workers:int -> unit -> int
(** Bring up a new member (e.g. the new software version) at the
    fleet's current horizon; returns its slot. *)

val drain_device : t -> int -> unit
(** Take a member out of rotation; its established connections keep
    being served until they close.
    @raise Invalid_argument for a removed slot. *)

val live_conns : t -> int -> int
(** Established connections still on a member, as of the last
    synchronization round. *)

val remove : t -> int -> unit
(** Remove a member immediately: its counters fold into the cluster
    aggregates, its trace ring (if any) is retained for
    {!merged_trace}, and mail still in flight to it is dropped —
    abandoned along with the removed VM.
    @raise Invalid_argument if the slot was already removed; removal
    is not idempotent, so double-removal is a harness bug worth
    failing loudly on. *)

val remove_when_drained :
  t -> int -> ?poll:Engine.Sim_time.t -> on_removed:(unit -> unit) -> unit ->
  unit
(** Wait (polling) until the member has no connections, then remove
    it.  Calls [on_removed] immediately if the slot is already gone. *)

val rolling_replace :
  t ->
  new_mode:Lb.Device.mode ->
  ?workers:int ->
  ?poll:Engine.Sim_time.t ->
  ?max_drain:Engine.Sim_time.t ->
  on_done:(unit -> unit) ->
  unit ->
  unit
(** Canary rollout: for each original member, add a new-[new_mode]
    device, drain the old one, wait for it to empty (or [max_drain],
    default 30 s, after which remaining connections are abandoned to
    the removed VM, like long-lived IoT clients), remove it, continue. *)

val completed : t -> int
(** Sum of completed requests over members, including removed ones. *)

val dropped : t -> int

val merged_trace : t -> Trace.record list
(** All members' trace rings (including removed members'), merged in
    [(time, process id, per-process seq)] order and re-stamped with
    merge-order sequence numbers — one deterministic stream,
    byte-identical for every [?shards] value.  Empty unless the
    cluster was created with [trace_capacity]. *)

val trace_drops : t -> int
(** Records lost to ring overflow across all members — non-zero means
    {!merged_trace} is truncated and [trace_capacity] was too small. *)

val shutdown : t -> unit
(** Stop the synchronization rounds and join the worker-domain pool.
    Idempotent.  Mandatory for [shards > 1] harnesses that build
    clusters in a loop. *)
