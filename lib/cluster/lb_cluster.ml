module Sim = Engine.Sim
module Sim_time = Engine.Sim_time
module Shard = Engine.Shard
module Coordinator = Engine.Coordinator

(* Each member device is one logical process (LP): slot [s] runs on
   its own simulator as shard id [s + 1], the caller's simulator is
   the control LP (id 0).  All cluster<->device interaction crosses
   LP boundaries as messages with a fixed latency [lookahead], and the
   coordinator advances the fleet in rounds of exactly that width — so
   no LP can ever receive a message inside a window it has already
   executed (conservative synchronization), whatever the domain count.

   The decomposition is the same for every [?shards] value; [shards]
   only picks how many OCaml domains execute member rounds.  That is
   the whole determinism argument: schedules, trace sequence numbers
   and message stamps are functions of the LP decomposition alone, so
   the merged trace is byte-identical across domain counts. *)

type member = {
  slot : int;
  shard : Shard.t;
  dev : Lb.Device.t;
  mutable draining : bool;
}

type t = {
  sim : Sim.t;  (* the control LP; driven by the caller *)
  control : Shard.t;
  coord : Coordinator.t;
  rng : Engine.Rng.t;
  tenants : Netsim.Tenant.t array;
  default_workers : int;
  lookahead : Sim_time.t;
  trace_capacity : int option;
  slots : (int, member) Hashtbl.t;
  mutable next_slot : int;
  mutable next_req_id : int;
  mutable removed_completed : int;
  mutable removed_dropped : int;
  mutable retired_traces : (int * Trace.record list) list;
  mutable retired_trace_drops : int;
  mutable tick : Sim.handle option;
  mutable stopped : bool;
}

let lp_of_slot slot = slot + 1

let spawn t ~mode ~workers =
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  let shard =
    Shard.create ~id:(lp_of_slot slot) ?trace_capacity:t.trace_capacity ()
  in
  (* A device joining mid-run starts at the fleet's horizon: align the
     empty shard clock first so creation-time events stamp there. *)
  let horizon = Coordinator.horizon t.coord in
  if horizon > 0 then Shard.run_to shard ~limit:horizon;
  let dev =
    Shard.with_context shard (fun () ->
        let dev =
          Lb.Device.create ~sim:(Shard.sim shard) ~rng:(Engine.Rng.split t.rng)
            ~mode ~workers ~tenants:t.tenants ()
        in
        Lb.Device.start dev;
        dev)
  in
  Coordinator.add t.coord shard;
  Hashtbl.replace t.slots slot { slot; shard; dev; draining = false };
  slot

(* The synchronization round, riding the control sim as a recurring
   event: deliver control mail, run every member to the control
   clock, collect member mail.  Re-armed before advancing so message
   events landing exactly one lookahead out sort behind the next
   tick deterministically. *)
let rec tick t () =
  if not t.stopped then begin
    t.tick <- Some (Sim.schedule_after t.sim ~delay:t.lookahead (tick t));
    Coordinator.advance t.coord ~horizon:(Sim.now t.sim)
  end

let create ~sim ~rng ~tenants ~devices ~mode ?(workers = 8) ?(shards = 1)
    ?lookahead ?trace_capacity () =
  if devices <= 0 then invalid_arg "Lb_cluster.create: devices must be positive";
  if shards <= 0 then invalid_arg "Lb_cluster.create: shards must be positive";
  let lookahead =
    match lookahead with
    | Some d ->
      if d <= 0 then invalid_arg "Lb_cluster.create: lookahead must be positive";
      d
    | None -> Hermes.Runtime.cross_shard_latency ()
  in
  let control = Shard.control ~sim in
  let t =
    {
      sim;
      control;
      coord = Coordinator.create ~control ~domains:shards;
      rng;
      tenants;
      default_workers = workers;
      lookahead;
      trace_capacity;
      slots = Hashtbl.create 16;
      next_slot = 0;
      next_req_id = 0;
      removed_completed = 0;
      removed_dropped = 0;
      retired_traces = [];
      retired_trace_drops = 0;
      tick = None;
      stopped = false;
    }
  in
  for _ = 1 to devices do
    ignore (spawn t ~mode ~workers)
  done;
  t.tick <- Some (Sim.schedule_after t.sim ~delay:t.lookahead (tick t));
  t

let size t = Hashtbl.length t.slots

let in_rotation t =
  Hashtbl.fold (fun _ m acc -> if m.draining then acc else acc + 1) t.slots 0

let member t slot =
  match Hashtbl.find_opt t.slots slot with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Lb_cluster: slot %d removed" slot)

let device t slot = (member t slot).dev

let devices t =
  Hashtbl.fold (fun slot m acc -> (slot, m.dev) :: acc) t.slots []
  |> List.sort compare

let serving t =
  Hashtbl.fold (fun _ m acc -> if m.draining then acc else m :: acc) t.slots []
  |> List.sort (fun a b -> compare a.slot b.slot)

let lookahead t = t.lookahead

(* Control -> device mail: delivered by the coordinator at the next
   round, executed on the member's simulator one lookahead from now.
   Mail for a slot removed in the meantime is dropped with the LP. *)
let post_to t ~slot action =
  if Hashtbl.mem t.slots slot then
    Shard.post t.control ~dst:(lp_of_slot slot)
      ~at:(Sim_time.add (Sim.now t.sim) t.lookahead)
      action

type conn_ref = {
  cluster : t;
  slot : int;
  member : Lb.Device.t;
  conn : Lb.Conn.t;
}

type events = {
  established : conn_ref -> unit;
  request_done : conn_ref -> Lb.Request.t -> unit;
  closed : conn_ref -> unit;
  reset : conn_ref -> unit;
  dispatch_failed : unit -> unit;
}

let null_events =
  {
    established = (fun _ -> ());
    request_done = (fun _ _ -> ());
    closed = (fun _ -> ());
    reset = (fun _ -> ());
    dispatch_failed = (fun () -> ());
  }

let dispatch t m ~tenant ~events =
  let shard = m.shard in
  let dev_sim = Shard.sim shard in
  let wrap conn = { cluster = t; slot = m.slot; member = m.dev; conn } in
  (* Device-side callbacks fire on the member's simulator; marshal
     them back to the control LP one lookahead later. *)
  let to_control action =
    Shard.post shard ~dst:0
      ~at:(Sim_time.add (Sim.now dev_sim) t.lookahead)
      action
  in
  let dev_events =
    {
      Lb.Device.established =
        (fun conn -> to_control (fun () -> events.established (wrap conn)));
      request_done =
        (fun conn req ->
          to_control (fun () -> events.request_done (wrap conn) req));
      closed = (fun conn -> to_control (fun () -> events.closed (wrap conn)));
      reset = (fun conn -> to_control (fun () -> events.reset (wrap conn)));
      dispatch_failed =
        (fun () -> to_control (fun () -> events.dispatch_failed ()));
    }
  in
  post_to t ~slot:m.slot (fun () ->
      Lb.Device.connect m.dev ~tenant ~events:dev_events)

let connect t ~tenant ~events =
  match serving t with
  | [] ->
    (* Nothing in rotation is a control-plane fact known immediately:
       fail synchronously, before any cross-shard hop. *)
    events.dispatch_failed ()
  | members ->
    (* ECMP-style spread: uniform choice is what per-flow hashing looks
       like over many flows. *)
    let m = List.nth members (Engine.Rng.int t.rng (List.length members)) in
    dispatch t m ~tenant ~events

let send r req =
  post_to r.cluster ~slot:r.slot (fun () ->
      ignore (Lb.Device.send r.member r.conn req))

let close r =
  post_to r.cluster ~slot:r.slot (fun () ->
      Lb.Device.close_conn r.member r.conn)

let run_on t ~slot f =
  let m = member t slot in
  post_to t ~slot (fun () -> f m.dev)

let fresh_id t =
  t.next_req_id <- t.next_req_id + 1;
  t.next_req_id

let add_device t ~mode ?workers () =
  let workers = Option.value ~default:t.default_workers workers in
  spawn t ~mode ~workers

let drain_device t slot = (member t slot).draining <- true

let live_conns t slot =
  Array.fold_left ( + ) 0 (Lb.Device.conns_per_worker (device t slot))

let remove t slot =
  let m = member t slot in
  t.removed_completed <- t.removed_completed + Lb.Device.completed m.dev;
  t.removed_dropped <- t.removed_dropped + Lb.Device.dropped m.dev;
  (match t.trace_capacity with
  | Some _ ->
    t.retired_traces <-
      (lp_of_slot slot, Shard.records m.shard) :: t.retired_traces;
    t.retired_trace_drops <- t.retired_trace_drops + Shard.dropped_records m.shard
  | None -> ());
  Hashtbl.remove t.slots slot;
  Coordinator.remove t.coord (lp_of_slot slot)

let remove_when_drained t slot ?(poll = Sim_time.ms 100) ~on_removed () =
  let rec wait () =
    if not (Hashtbl.mem t.slots slot) then on_removed ()
    else if live_conns t slot = 0 then begin
      remove t slot;
      on_removed ()
    end
    else ignore (Sim.schedule_after t.sim ~delay:poll wait)
  in
  wait ()

let rolling_replace t ~new_mode ?workers ?(poll = Sim_time.ms 100)
    ?(max_drain = Sim_time.sec 30) ~on_done () =
  let originals =
    Hashtbl.fold (fun slot _ acc -> slot :: acc) t.slots [] |> List.sort compare
  in
  let rec step = function
    | [] -> on_done ()
    | slot :: rest ->
      ignore (add_device t ~mode:new_mode ?workers ());
      drain_device t slot;
      let deadline = Sim_time.add (Sim.now t.sim) max_drain in
      let rec wait () =
        if live_conns t slot = 0 || Sim.now t.sim >= deadline then begin
          (* past the deadline the VM keeps draining out of rotation,
             like the long-lived-client tail of Fig. 11; accounting-wise
             it leaves the cluster now *)
          remove t slot;
          step rest
        end
        else ignore (Sim.schedule_after t.sim ~delay:poll wait)
      in
      wait ()
  in
  step originals

let completed t =
  t.removed_completed
  + Hashtbl.fold (fun _ m acc -> acc + Lb.Device.completed m.dev) t.slots 0

let dropped t =
  t.removed_dropped
  + Hashtbl.fold (fun _ m acc -> acc + Lb.Device.dropped m.dev) t.slots 0

let merged_trace t =
  let live =
    Hashtbl.fold
      (fun slot m acc -> (lp_of_slot slot, Shard.records m.shard) :: acc)
      t.slots []
  in
  let tagged =
    List.concat_map
      (fun (lp, records) -> List.map (fun r -> (lp, r)) records)
      (live @ t.retired_traces)
  in
  let order (lp_a, (a : Trace.record)) (lp_b, (b : Trace.record)) =
    match compare a.Trace.time b.Trace.time with
    | 0 -> (
      match compare lp_a lp_b with 0 -> compare a.Trace.seq b.Trace.seq | c -> c)
    | c -> c
  in
  (* Re-stamp [seq] in merge order so the merged stream reads like one
     recorder's output whatever the per-LP interleaving was. *)
  List.mapi
    (fun i (_, r) -> { r with Trace.seq = i })
    (List.sort order tagged)

let trace_drops t =
  t.retired_trace_drops
  + Hashtbl.fold
      (fun _ m acc -> acc + Shard.dropped_records m.shard)
      t.slots 0

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.tick with
    | Some handle -> Sim.cancel t.sim handle
    | None -> ());
    t.tick <- None;
    Coordinator.shutdown t.coord
  end
