(** Structured event tracing for the scheduling decision points.

    The paper's claims are {e ordering} claims — which worker a wakeup
    chose, which filter dropped whom, which socket the eBPF dispatcher
    picked — so end-state counters cannot distinguish a correct policy
    from a wrong one that happens to balance load.  This recorder
    captures every such decision as a typed event with a virtual-time
    stamp, for the golden-trace conformance harness ([test/golden]) and
    for offline inspection ([hermes_sim run --trace out.jsonl]).

    The design mirrors kernel tracepoints: one process-wide sink,
    installed explicitly; instrumented call sites guard event
    construction behind {!enabled}, so a disabled recorder costs one
    load and one branch per decision point — nothing is allocated,
    formatted, or buffered.  Events are stamped with the installing
    simulation's virtual clock (fed by {!set_now} from the simulator's
    event loop) and a monotone sequence number, so captured traces are
    bit-for-bit deterministic across runs. *)

type policy = Lifo | Rr | All | Fifo  (** wait-queue wakeup policy *)

type via = Prog | Hash
(** Reuseport selection path: eBPF-bitmap-overridden or default hash. *)

type column = Avail | Busy | Conn  (** WST row written *)

type io = Accept_io | Read_io  (** epoll readiness kind *)

type event =
  | Wq_wake of { policy : policy; queue : int list; woken : int list; steps : int }
      (** One wait-queue traversal: the queue snapshot before the walk
          (head first), the workers actually woken in wake order, and
          the number of waiter callbacks invoked. *)
  | Epoll_dispatch of { worker : int; events : (int * io * int) list }
      (** A non-empty [epoll_wait] batch handed to a worker:
          (fd, kind, units) in delivery order. *)
  | Sched_filter of { stage : string; cutoff : float; survivors : int64; live : int }
      (** One stage of the Algo 1 cascade ("time", "conn" or "event"):
          the cutoff applied (staleness threshold in ns, or
          [avg + θ]) and the surviving-worker mask after the stage. *)
  | Sched_result of { bitmap : int64; passed : int; total : int; after_time : int }
      (** The cascade's final bitmap, as pushed to the kernel. *)
  | Map_update of { map : string; key : int; value : int64 }
      (** A bpf() map-update syscall — the bitmap push of Fig. 9
          line 20. *)
  | Prog_run of { prog : string; flow_hash : int; outcome : string; cycles : int }
      (** One eBPF dispatch-program execution; [outcome] is "select",
          "fallback" or "drop". *)
  | Rp_select of { port : int; flow_hash : int; via : via; slot : int }
      (** Reuseport socket selection for one SYN: the winning member
          slot and whether the program or the default hash chose it. *)
  | Rp_drop of { port : int; flow_hash : int }
  | Accept of { worker : int; conn : int }
  | Close of { worker : int; conn : int; reset : bool }
  | Wst_write of { worker : int; column : column; value : int }
      (** A worker's WST column update; [worker] is the within-group
          index, [value] the cell's new contents. *)
  | Probe_timeout of { tenant : int; after : int }
      (** A health probe gave up after [after] ns without a reply —
          distinguishes probe {e loss} from mere delay in traces. *)
  | Verifier_verdict of {
      prog : string;
      backend : string;
      accepted : bool;
      insns : int;
      visited : int;
      proved : int;
      residual : int;
      reason : string;
    }
      (** Load-time verifier decision for a selection program.
          [backend] is ["ast"] (structural {!Ebpf.verify}) or
          ["bytecode"] (abstract-interpretation [Verifier.verify]);
          [visited] counts abstract instruction visits, [proved] the
          fault sites discharged statically and [residual] those left
          as runtime checks.  [reason] is empty on acceptance. *)
  | Fault_inject of { fault : string; worker : int; arg : int }
      (** A fault-plan injection fired: [fault] is the fault-class name
          (["crash"], ["hang"], ["wst_stall"], ["ebpf_fail"], …),
          [worker] the target ([-1] for device-wide faults), [arg] a
          class-specific parameter (duration in ns, delay, …).  The
          invariant monitors key their windows off these events. *)
  | Fault_clear of { fault : string; worker : int }
      (** The matching end of a bounded-duration injection (or an
          explicit recovery action). *)
  | Splice_attach of { conn : int; worker : int; key : int }
      (** Userspace installed a sockmap entry for an established
          connection: bytes for [conn] now splice in-kernel to
          [worker]; [key] is the flow-hash-derived sockmap slot. *)
  | Splice_redirect of { conn : int; worker : int; bytes : int; copied : int }
      (** One payload chunk forwarded by the kernel splice path
          ([bytes] total, of which [copied] were selectively copied up
          to userspace) — the userspace proxy never saw it. *)
  | Splice_teardown of { conn : int; worker : int; key : int; reason : string }
      (** Userspace removed a sockmap entry; [reason] is ["close"],
          ["reset"], ["restart"] or ["isolate"].  After this event no
          [Splice_redirect] may name [conn] — the monitors enforce
          it. *)

type record = { seq : int; time : int; event : event }
(** [time] is virtual nanoseconds ({!set_now}); [seq] a process-wide
    monotone counter reset by {!install}. *)

type sink = { write : record -> unit; close : unit -> unit }

(** {1 Recorder control} *)

val enabled : unit -> bool
(** Cheap guard for instrumentation sites:
    [if Trace.enabled () then Trace.emit (...)]. *)

val emit : event -> unit
(** Record one event (no-op when no sink is installed).  Call sites
    should guard with {!enabled} so the event is not even constructed
    when tracing is off. *)

val set_now : int -> unit
(** Update the timestamp applied to subsequent events; called by the
    simulator as its clock advances. *)

val now : unit -> int

val install : sink -> unit
(** Make [sink] the active recorder (closing any previous one) and
    reset the sequence counter and clock. *)

val uninstall : unit -> unit
(** Stop recording and close the active sink.  Idempotent. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], and uninstalls — even on
    exceptions. *)

(** {1 Recorder state multiplexing}

    The recorder state (active sink, sequence counter, clock) is
    domain-local: simulation shards running on different OCaml domains
    record into disjoint sinks with no synchronisation.  A single
    domain can additionally multiplex several logical shards over its
    slot with {!swap_state} — the shard executor swaps a shard's state
    in around running its events and swaps the previous state back
    afterwards, so each shard keeps an independent sink, monotone
    sequence counter and clock regardless of which domain runs it. *)

type state
(** One recorder context: a sink (or none), its sequence counter and
    its clock. *)

val make_state : sink option -> state
(** A fresh context with the given sink, sequence 0 and clock 0. *)

val swap_state : state -> state
(** [swap_state s] installs [s] as the calling domain's recorder
    context and returns the previously installed one.  All subsequent
    {!emit} / {!set_now} / {!install} calls on this domain act on [s]
    until the next swap. *)

(** {1 Ring buffer} *)

module Ring : sig
  type t
  (** Fixed-capacity ring keeping the {e most recent} records. *)

  val create : capacity:int -> t
  val capacity : t -> int
  val write : t -> record -> unit
  val length : t -> int

  val dropped : t -> int
  (** Records overwritten because the ring was full. *)

  val records : t -> record list
  (** Retained records, oldest first. *)

  val clear : t -> unit
end

(** {1 Sinks} *)

val ring_sink : Ring.t -> sink
(** In-memory sink for tests: events land in the ring. *)

val jsonl_sink : out_channel -> sink
(** One JSON object per line; flushed on close.  The channel itself is
    not closed. *)

val text_sink : out_channel -> sink
(** The {!render} form, one event per line — the golden-file format. *)

(** {1 Binary trace format}

    A compact fixed-width alternative to {!jsonl_sink} for
    multi-million-event soaks: an 8-byte magic followed by framed
    records of little-endian 64-bit words.  Each record's first word
    packs a tag (low 8 bits) and a payload word count, so readers can
    skip records without decoding them and the file is mmap-able.
    Strings are interned — each distinct string is emitted once as a
    definition record and referenced by integer id thereafter.
    Decoding a binary trace yields the {e same} {!record} values the
    JSONL sink would have serialised, event for event
    ([hermes_sim trace-dump] renders them through the same
    {!render} / {!json_of_record} paths). *)

module Binary : sig
  val magic : string
  (** ["HTRCBIN1"] — the stream's first 8 bytes. *)

  exception Corrupt of string
  (** Raised by the decoder on truncation, unknown tags, undefined
      string ids or out-of-range enum codes. *)

  val sink : out_channel -> sink
  (** Writes the magic immediately, then one framed record per
      {!emit}.  Steady-state writing allocates no per-event OCaml
      values beyond a reused scratch buffer.  Flushes on close; the
      channel itself is not closed. *)

  val iter_channel : in_channel -> (record -> unit) -> unit
  (** Decode records in stream order, calling the callback on each
      event record (string-definition records are consumed
      internally).  @raise Corrupt on malformed input. *)

  val read_channel : in_channel -> record list
  val read_file : string -> record list
end

(** {1 Rendering} *)

val render_event : event -> string
val render : record -> string
(** Stable single-line form: right-aligned timestamp, then the event. *)

val json_of_record : record -> string
val event_name : event -> string
