type policy = Lifo | Rr | All | Fifo
type via = Prog | Hash
type column = Avail | Busy | Conn
type io = Accept_io | Read_io

type event =
  | Wq_wake of { policy : policy; queue : int list; woken : int list; steps : int }
  | Epoll_dispatch of { worker : int; events : (int * io * int) list }
  | Sched_filter of { stage : string; cutoff : float; survivors : int64; live : int }
  | Sched_result of { bitmap : int64; passed : int; total : int; after_time : int }
  | Map_update of { map : string; key : int; value : int64 }
  | Prog_run of { prog : string; flow_hash : int; outcome : string; cycles : int }
  | Rp_select of { port : int; flow_hash : int; via : via; slot : int }
  | Rp_drop of { port : int; flow_hash : int }
  | Accept of { worker : int; conn : int }
  | Close of { worker : int; conn : int; reset : bool }
  | Wst_write of { worker : int; column : column; value : int }
  | Probe_timeout of { tenant : int; after : int }
  | Verifier_verdict of {
      prog : string;
      backend : string;
      accepted : bool;
      insns : int;
      visited : int;
      proved : int;
      residual : int;
      reason : string;
    }
  | Fault_inject of { fault : string; worker : int; arg : int }
  | Fault_clear of { fault : string; worker : int }

type record = { seq : int; time : int; event : event }

type sink = { write : record -> unit; close : unit -> unit }

(* ------------------------------------------------------------------ *)
(* Recorder state (tracepoint style: one sink per execution context)    *)

(* The recorder state is domain-local rather than a plain global so
   that simulation shards running on different OCaml domains record
   into disjoint sinks without synchronisation; [swap_state] further
   lets one domain multiplex several logical shards (each owning its
   own sink, sequence counter and clock) over the same domain-local
   slot.  Single-domain programs see exactly the old one-global-sink
   behaviour. *)

type state = {
  mutable active : sink option;
  mutable seq_counter : int;
  mutable clock : int;
}

let fresh_state () = { active = None; seq_counter = 0; clock = 0 }
let state_key = Domain.DLS.new_key fresh_state
let st () = Domain.DLS.get state_key

(* Process-wide count of states holding a live sink.  [enabled],
   [set_now] and [emit] sit on per-select / per-event hot paths where
   the domain-local lookup alone costs a few ns; when nothing in the
   whole process is tracing (every benchmark fast path), this gate
   reduces them to one atomic load.  The count is conservative: a
   shard state whose ring outlives its shard keeps it positive, which
   only means those processes keep paying the domain-local lookup —
   never that a record is lost.

   Concurrency primitives go through the shim ([A.get] is the same
   "%atomic_load" primitive, so the fast path is still one inlined
   atomic load); the publication protocol itself — count incremented
   in [make_state] before the state is ever visible to a domain,
   decremented only by [uninstall] — is model-checked by the
   [trace_publication] harness in [Mcheck.Scenarios]. *)
module A = Mcheck_shim.Real.Atomic

let active_sinks = A.make ~name:"trace.active_sinks" 0

let make_state sink =
  (match sink with None -> () | Some _ -> A.incr active_sinks);
  { active = sink; seq_counter = 0; clock = 0 }

let swap_state s =
  let cur = Domain.DLS.get state_key in
  Domain.DLS.set state_key s;
  cur

let enabled () =
  A.get active_sinks > 0
  && match (st ()).active with None -> false | Some _ -> true

let set_now t = if A.get active_sinks > 0 then (st ()).clock <- t
let now () = (st ()).clock

let emit ev =
  if A.get active_sinks > 0 then begin
    let s = st () in
    match s.active with
    | None -> ()
    | Some sink ->
      sink.write { seq = s.seq_counter; time = s.clock; event = ev };
      s.seq_counter <- s.seq_counter + 1
  end

let uninstall () =
  let s = st () in
  match s.active with
  | None -> ()
  | Some sink ->
    s.active <- None;
    A.decr active_sinks;
    sink.close ()

let install sink =
  uninstall ();
  let s = st () in
  s.seq_counter <- 0;
  s.clock <- 0;
  s.active <- Some sink;
  A.incr active_sinks

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                          *)

module Ring = struct
  type buffer = {
    buf : record array;
    mutable next : int;
    mutable stored : int;
    mutable lost : int;
  }

  type t = buffer

  let dummy = { seq = -1; time = 0; event = Rp_drop { port = 0; flow_hash = 0 } }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be positive";
    { buf = Array.make capacity dummy; next = 0; stored = 0; lost = 0 }

  let capacity t = Array.length t.buf

  let write t r =
    let cap = Array.length t.buf in
    if t.stored = cap then t.lost <- t.lost + 1 else t.stored <- t.stored + 1;
    t.buf.(t.next) <- r;
    t.next <- (t.next + 1) mod cap

  let length t = t.stored
  let dropped t = t.lost

  let records t =
    let cap = Array.length t.buf in
    List.init t.stored (fun i ->
        t.buf.((t.next - t.stored + i + cap + cap) mod cap))

  let clear t =
    t.next <- 0;
    t.stored <- 0;
    t.lost <- 0
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let policy_name = function Lifo -> "lifo" | Rr -> "rr" | All -> "all" | Fifo -> "fifo"
let via_name = function Prog -> "prog" | Hash -> "hash"
let column_name = function Avail -> "avail" | Busy -> "busy" | Conn -> "conn"
let io_name = function Accept_io -> "accept" | Read_io -> "read"

let ids l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let io_events l =
  "["
  ^ String.concat ","
      (List.map (fun (fd, k, units) -> Printf.sprintf "%d:%s*%d" fd (io_name k) units) l)
  ^ "]"

let render_event = function
  | Wq_wake { policy; queue; woken; steps } ->
    Printf.sprintf "wq.wake policy=%s queue=%s woken=%s steps=%d" (policy_name policy)
      (ids queue) (ids woken) steps
  | Epoll_dispatch { worker; events } ->
    Printf.sprintf "epoll.dispatch worker=%d events=%s" worker (io_events events)
  | Sched_filter { stage; cutoff; survivors; live } ->
    Printf.sprintf "sched.filter stage=%s cutoff=%.2f survivors=0x%Lx live=%d" stage
      cutoff survivors live
  | Sched_result { bitmap; passed; total; after_time } ->
    Printf.sprintf "sched.result bitmap=0x%Lx passed=%d/%d after_time=%d" bitmap passed
      total after_time
  | Map_update { map; key; value } ->
    Printf.sprintf "ebpf.map_update map=%s key=%d value=0x%Lx" map key value
  | Prog_run { prog; flow_hash; outcome; cycles } ->
    Printf.sprintf "ebpf.run prog=%s hash=0x%x outcome=%s cycles=%d" prog flow_hash
      outcome cycles
  | Rp_select { port; flow_hash; via; slot } ->
    Printf.sprintf "reuseport.select port=%d hash=0x%x via=%s slot=%d" port flow_hash
      (via_name via) slot
  | Rp_drop { port; flow_hash } ->
    Printf.sprintf "reuseport.drop port=%d hash=0x%x" port flow_hash
  | Accept { worker; conn } -> Printf.sprintf "worker.accept worker=%d conn=%d" worker conn
  | Close { worker; conn; reset } ->
    Printf.sprintf "worker.close worker=%d conn=%d reset=%b" worker conn reset
  | Wst_write { worker; column; value } ->
    Printf.sprintf "wst.write worker=%d col=%s value=%d" worker (column_name column) value
  | Probe_timeout { tenant; after } ->
    Printf.sprintf "probe.timeout tenant=%d after=%d" tenant after
  | Verifier_verdict { prog; backend; accepted; insns; visited; proved; residual; reason } ->
    Printf.sprintf
      "verifier.verdict prog=%s backend=%s accepted=%b insns=%d visited=%d \
       proved=%d residual=%d reason=%s"
      prog backend accepted insns visited proved residual
      (if reason = "" then "-" else reason)
  | Fault_inject { fault; worker; arg } ->
    Printf.sprintf "fault.inject kind=%s worker=%d arg=%d" fault worker arg
  | Fault_clear { fault; worker } ->
    Printf.sprintf "fault.clear kind=%s worker=%d" fault worker

let render r = Printf.sprintf "%10d %s" r.time (render_event r.event)

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

let json_string s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""
let json_ids l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let json_fields = function
  | Wq_wake { policy; queue; woken; steps } ->
    Printf.sprintf "\"policy\":%s,\"queue\":%s,\"woken\":%s,\"steps\":%d"
      (json_string (policy_name policy))
      (json_ids queue) (json_ids woken) steps
  | Epoll_dispatch { worker; events } ->
    Printf.sprintf "\"worker\":%d,\"events\":[%s]" worker
      (String.concat ","
         (List.map
            (fun (fd, k, units) ->
              Printf.sprintf "{\"fd\":%d,\"kind\":%s,\"units\":%d}" fd
                (json_string (io_name k)) units)
            events))
  | Sched_filter { stage; cutoff; survivors; live } ->
    Printf.sprintf "\"stage\":%s,\"cutoff\":%.2f,\"survivors\":\"0x%Lx\",\"live\":%d"
      (json_string stage) cutoff survivors live
  | Sched_result { bitmap; passed; total; after_time } ->
    Printf.sprintf "\"bitmap\":\"0x%Lx\",\"passed\":%d,\"total\":%d,\"after_time\":%d"
      bitmap passed total after_time
  | Map_update { map; key; value } ->
    Printf.sprintf "\"map\":%s,\"key\":%d,\"value\":\"0x%Lx\"" (json_string map) key value
  | Prog_run { prog; flow_hash; outcome; cycles } ->
    Printf.sprintf "\"prog\":%s,\"hash\":%d,\"outcome\":%s,\"cycles\":%d"
      (json_string prog) flow_hash (json_string outcome) cycles
  | Rp_select { port; flow_hash; via; slot } ->
    Printf.sprintf "\"port\":%d,\"hash\":%d,\"via\":%s,\"slot\":%d" port flow_hash
      (json_string (via_name via)) slot
  | Rp_drop { port; flow_hash } -> Printf.sprintf "\"port\":%d,\"hash\":%d" port flow_hash
  | Accept { worker; conn } -> Printf.sprintf "\"worker\":%d,\"conn\":%d" worker conn
  | Close { worker; conn; reset } ->
    Printf.sprintf "\"worker\":%d,\"conn\":%d,\"reset\":%b" worker conn reset
  | Wst_write { worker; column; value } ->
    Printf.sprintf "\"worker\":%d,\"col\":%s,\"value\":%d" worker
      (json_string (column_name column)) value
  | Probe_timeout { tenant; after } ->
    Printf.sprintf "\"tenant\":%d,\"after\":%d" tenant after
  | Verifier_verdict { prog; backend; accepted; insns; visited; proved; residual; reason } ->
    Printf.sprintf
      "\"prog\":%s,\"backend\":%s,\"accepted\":%b,\"insns\":%d,\"visited\":%d,\"proved\":%d,\"residual\":%d,\"reason\":%s"
      (json_string prog) (json_string backend) accepted insns visited proved
      residual (json_string reason)
  | Fault_inject { fault; worker; arg } ->
    Printf.sprintf "\"kind\":%s,\"worker\":%d,\"arg\":%d" (json_string fault)
      worker arg
  | Fault_clear { fault; worker } ->
    Printf.sprintf "\"kind\":%s,\"worker\":%d" (json_string fault) worker

let event_name = function
  | Wq_wake _ -> "wq.wake"
  | Epoll_dispatch _ -> "epoll.dispatch"
  | Sched_filter _ -> "sched.filter"
  | Sched_result _ -> "sched.result"
  | Map_update _ -> "ebpf.map_update"
  | Prog_run _ -> "ebpf.run"
  | Rp_select _ -> "reuseport.select"
  | Rp_drop _ -> "reuseport.drop"
  | Accept _ -> "worker.accept"
  | Close _ -> "worker.close"
  | Wst_write _ -> "wst.write"
  | Probe_timeout _ -> "probe.timeout"
  | Verifier_verdict _ -> "verifier.verdict"
  | Fault_inject _ -> "fault.inject"
  | Fault_clear _ -> "fault.clear"

let json_of_record r =
  Printf.sprintf "{\"seq\":%d,\"t\":%d,\"ev\":%s,%s}" r.seq r.time
    (json_string (event_name r.event))
    (json_fields r.event)

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)

let ring_sink ring = { write = (fun r -> Ring.write ring r); close = (fun () -> ()) }

let jsonl_sink oc =
  {
    write =
      (fun r ->
        output_string oc (json_of_record r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let text_sink oc =
  {
    write =
      (fun r ->
        output_string oc (render r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }
