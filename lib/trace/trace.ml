type policy = Lifo | Rr | All | Fifo
type via = Prog | Hash
type column = Avail | Busy | Conn
type io = Accept_io | Read_io

type event =
  | Wq_wake of { policy : policy; queue : int list; woken : int list; steps : int }
  | Epoll_dispatch of { worker : int; events : (int * io * int) list }
  | Sched_filter of { stage : string; cutoff : float; survivors : int64; live : int }
  | Sched_result of { bitmap : int64; passed : int; total : int; after_time : int }
  | Map_update of { map : string; key : int; value : int64 }
  | Prog_run of { prog : string; flow_hash : int; outcome : string; cycles : int }
  | Rp_select of { port : int; flow_hash : int; via : via; slot : int }
  | Rp_drop of { port : int; flow_hash : int }
  | Accept of { worker : int; conn : int }
  | Close of { worker : int; conn : int; reset : bool }
  | Wst_write of { worker : int; column : column; value : int }
  | Probe_timeout of { tenant : int; after : int }
  | Verifier_verdict of {
      prog : string;
      backend : string;
      accepted : bool;
      insns : int;
      visited : int;
      proved : int;
      residual : int;
      reason : string;
    }
  | Fault_inject of { fault : string; worker : int; arg : int }
  | Fault_clear of { fault : string; worker : int }
  | Splice_attach of { conn : int; worker : int; key : int }
  | Splice_redirect of { conn : int; worker : int; bytes : int; copied : int }
  | Splice_teardown of { conn : int; worker : int; key : int; reason : string }

type record = { seq : int; time : int; event : event }

type sink = { write : record -> unit; close : unit -> unit }

(* ------------------------------------------------------------------ *)
(* Recorder state (tracepoint style: one sink per execution context)    *)

(* The recorder state is domain-local rather than a plain global so
   that simulation shards running on different OCaml domains record
   into disjoint sinks without synchronisation; [swap_state] further
   lets one domain multiplex several logical shards (each owning its
   own sink, sequence counter and clock) over the same domain-local
   slot.  Single-domain programs see exactly the old one-global-sink
   behaviour. *)

type state = {
  mutable active : sink option;
  mutable seq_counter : int;
  mutable clock : int;
}

let fresh_state () = { active = None; seq_counter = 0; clock = 0 }
let state_key = Domain.DLS.new_key fresh_state
let st () = Domain.DLS.get state_key

(* Process-wide count of states holding a live sink.  [enabled],
   [set_now] and [emit] sit on per-select / per-event hot paths where
   the domain-local lookup alone costs a few ns; when nothing in the
   whole process is tracing (every benchmark fast path), this gate
   reduces them to one atomic load.  The count is conservative: a
   shard state whose ring outlives its shard keeps it positive, which
   only means those processes keep paying the domain-local lookup —
   never that a record is lost.

   Concurrency primitives go through the shim ([A.get] is the same
   "%atomic_load" primitive, so the fast path is still one inlined
   atomic load); the publication protocol itself — count incremented
   in [make_state] before the state is ever visible to a domain,
   decremented only by [uninstall] — is model-checked by the
   [trace_publication] harness in [Mcheck.Scenarios]. *)
module A = Mcheck_shim.Real.Atomic

let active_sinks = A.make ~name:"trace.active_sinks" 0

let make_state sink =
  (match sink with None -> () | Some _ -> A.incr active_sinks);
  { active = sink; seq_counter = 0; clock = 0 }

let swap_state s =
  let cur = Domain.DLS.get state_key in
  Domain.DLS.set state_key s;
  cur

let enabled () =
  A.get active_sinks > 0
  && match (st ()).active with None -> false | Some _ -> true

let set_now t = if A.get active_sinks > 0 then (st ()).clock <- t
let now () = (st ()).clock

let emit ev =
  if A.get active_sinks > 0 then begin
    let s = st () in
    match s.active with
    | None -> ()
    | Some sink ->
      sink.write { seq = s.seq_counter; time = s.clock; event = ev };
      s.seq_counter <- s.seq_counter + 1
  end

let uninstall () =
  let s = st () in
  match s.active with
  | None -> ()
  | Some sink ->
    s.active <- None;
    A.decr active_sinks;
    sink.close ()

let install sink =
  uninstall ();
  let s = st () in
  s.seq_counter <- 0;
  s.clock <- 0;
  s.active <- Some sink;
  A.incr active_sinks

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                          *)

module Ring = struct
  type buffer = {
    buf : record array;
    mutable next : int;
    mutable stored : int;
    mutable lost : int;
  }

  type t = buffer

  let dummy = { seq = -1; time = 0; event = Rp_drop { port = 0; flow_hash = 0 } }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be positive";
    { buf = Array.make capacity dummy; next = 0; stored = 0; lost = 0 }

  let capacity t = Array.length t.buf

  let write t r =
    let cap = Array.length t.buf in
    if t.stored = cap then t.lost <- t.lost + 1 else t.stored <- t.stored + 1;
    t.buf.(t.next) <- r;
    t.next <- (t.next + 1) mod cap

  let length t = t.stored
  let dropped t = t.lost

  let records t =
    let cap = Array.length t.buf in
    List.init t.stored (fun i ->
        t.buf.((t.next - t.stored + i + cap + cap) mod cap))

  let clear t =
    t.next <- 0;
    t.stored <- 0;
    t.lost <- 0
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let policy_name = function Lifo -> "lifo" | Rr -> "rr" | All -> "all" | Fifo -> "fifo"
let via_name = function Prog -> "prog" | Hash -> "hash"
let column_name = function Avail -> "avail" | Busy -> "busy" | Conn -> "conn"
let io_name = function Accept_io -> "accept" | Read_io -> "read"

let ids l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let io_events l =
  "["
  ^ String.concat ","
      (List.map (fun (fd, k, units) -> Printf.sprintf "%d:%s*%d" fd (io_name k) units) l)
  ^ "]"

let render_event = function
  | Wq_wake { policy; queue; woken; steps } ->
    Printf.sprintf "wq.wake policy=%s queue=%s woken=%s steps=%d" (policy_name policy)
      (ids queue) (ids woken) steps
  | Epoll_dispatch { worker; events } ->
    Printf.sprintf "epoll.dispatch worker=%d events=%s" worker (io_events events)
  | Sched_filter { stage; cutoff; survivors; live } ->
    Printf.sprintf "sched.filter stage=%s cutoff=%.2f survivors=0x%Lx live=%d" stage
      cutoff survivors live
  | Sched_result { bitmap; passed; total; after_time } ->
    Printf.sprintf "sched.result bitmap=0x%Lx passed=%d/%d after_time=%d" bitmap passed
      total after_time
  | Map_update { map; key; value } ->
    Printf.sprintf "ebpf.map_update map=%s key=%d value=0x%Lx" map key value
  | Prog_run { prog; flow_hash; outcome; cycles } ->
    Printf.sprintf "ebpf.run prog=%s hash=0x%x outcome=%s cycles=%d" prog flow_hash
      outcome cycles
  | Rp_select { port; flow_hash; via; slot } ->
    Printf.sprintf "reuseport.select port=%d hash=0x%x via=%s slot=%d" port flow_hash
      (via_name via) slot
  | Rp_drop { port; flow_hash } ->
    Printf.sprintf "reuseport.drop port=%d hash=0x%x" port flow_hash
  | Accept { worker; conn } -> Printf.sprintf "worker.accept worker=%d conn=%d" worker conn
  | Close { worker; conn; reset } ->
    Printf.sprintf "worker.close worker=%d conn=%d reset=%b" worker conn reset
  | Wst_write { worker; column; value } ->
    Printf.sprintf "wst.write worker=%d col=%s value=%d" worker (column_name column) value
  | Probe_timeout { tenant; after } ->
    Printf.sprintf "probe.timeout tenant=%d after=%d" tenant after
  | Verifier_verdict { prog; backend; accepted; insns; visited; proved; residual; reason } ->
    Printf.sprintf
      "verifier.verdict prog=%s backend=%s accepted=%b insns=%d visited=%d \
       proved=%d residual=%d reason=%s"
      prog backend accepted insns visited proved residual
      (if reason = "" then "-" else reason)
  | Fault_inject { fault; worker; arg } ->
    Printf.sprintf "fault.inject kind=%s worker=%d arg=%d" fault worker arg
  | Fault_clear { fault; worker } ->
    Printf.sprintf "fault.clear kind=%s worker=%d" fault worker
  | Splice_attach { conn; worker; key } ->
    Printf.sprintf "splice.attach conn=%d worker=%d key=%d" conn worker key
  | Splice_redirect { conn; worker; bytes; copied } ->
    Printf.sprintf "splice.redirect conn=%d worker=%d bytes=%d copied=%d" conn
      worker bytes copied
  | Splice_teardown { conn; worker; key; reason } ->
    Printf.sprintf "splice.teardown conn=%d worker=%d key=%d reason=%s" conn
      worker key reason

let render r = Printf.sprintf "%10d %s" r.time (render_event r.event)

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

(* RFC 8259 string escaping: backslash and double-quote get
   two-character escapes, control characters the conventional short
   forms or \u00XX.  Event strings are normally tame identifiers, but
   fault names and verifier reasons are arbitrary — an unescaped
   backslash or newline would corrupt the whole JSONL line. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b
let json_ids l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let json_fields = function
  | Wq_wake { policy; queue; woken; steps } ->
    Printf.sprintf "\"policy\":%s,\"queue\":%s,\"woken\":%s,\"steps\":%d"
      (json_string (policy_name policy))
      (json_ids queue) (json_ids woken) steps
  | Epoll_dispatch { worker; events } ->
    Printf.sprintf "\"worker\":%d,\"events\":[%s]" worker
      (String.concat ","
         (List.map
            (fun (fd, k, units) ->
              Printf.sprintf "{\"fd\":%d,\"kind\":%s,\"units\":%d}" fd
                (json_string (io_name k)) units)
            events))
  | Sched_filter { stage; cutoff; survivors; live } ->
    Printf.sprintf "\"stage\":%s,\"cutoff\":%.2f,\"survivors\":\"0x%Lx\",\"live\":%d"
      (json_string stage) cutoff survivors live
  | Sched_result { bitmap; passed; total; after_time } ->
    Printf.sprintf "\"bitmap\":\"0x%Lx\",\"passed\":%d,\"total\":%d,\"after_time\":%d"
      bitmap passed total after_time
  | Map_update { map; key; value } ->
    Printf.sprintf "\"map\":%s,\"key\":%d,\"value\":\"0x%Lx\"" (json_string map) key value
  | Prog_run { prog; flow_hash; outcome; cycles } ->
    Printf.sprintf "\"prog\":%s,\"hash\":%d,\"outcome\":%s,\"cycles\":%d"
      (json_string prog) flow_hash (json_string outcome) cycles
  | Rp_select { port; flow_hash; via; slot } ->
    Printf.sprintf "\"port\":%d,\"hash\":%d,\"via\":%s,\"slot\":%d" port flow_hash
      (json_string (via_name via)) slot
  | Rp_drop { port; flow_hash } -> Printf.sprintf "\"port\":%d,\"hash\":%d" port flow_hash
  | Accept { worker; conn } -> Printf.sprintf "\"worker\":%d,\"conn\":%d" worker conn
  | Close { worker; conn; reset } ->
    Printf.sprintf "\"worker\":%d,\"conn\":%d,\"reset\":%b" worker conn reset
  | Wst_write { worker; column; value } ->
    Printf.sprintf "\"worker\":%d,\"col\":%s,\"value\":%d" worker
      (json_string (column_name column)) value
  | Probe_timeout { tenant; after } ->
    Printf.sprintf "\"tenant\":%d,\"after\":%d" tenant after
  | Verifier_verdict { prog; backend; accepted; insns; visited; proved; residual; reason } ->
    Printf.sprintf
      "\"prog\":%s,\"backend\":%s,\"accepted\":%b,\"insns\":%d,\"visited\":%d,\"proved\":%d,\"residual\":%d,\"reason\":%s"
      (json_string prog) (json_string backend) accepted insns visited proved
      residual (json_string reason)
  | Fault_inject { fault; worker; arg } ->
    Printf.sprintf "\"kind\":%s,\"worker\":%d,\"arg\":%d" (json_string fault)
      worker arg
  | Fault_clear { fault; worker } ->
    Printf.sprintf "\"kind\":%s,\"worker\":%d" (json_string fault) worker
  | Splice_attach { conn; worker; key } ->
    Printf.sprintf "\"conn\":%d,\"worker\":%d,\"key\":%d" conn worker key
  | Splice_redirect { conn; worker; bytes; copied } ->
    Printf.sprintf "\"conn\":%d,\"worker\":%d,\"bytes\":%d,\"copied\":%d" conn
      worker bytes copied
  | Splice_teardown { conn; worker; key; reason } ->
    Printf.sprintf "\"conn\":%d,\"worker\":%d,\"key\":%d,\"reason\":%s" conn
      worker key (json_string reason)

let event_name = function
  | Wq_wake _ -> "wq.wake"
  | Epoll_dispatch _ -> "epoll.dispatch"
  | Sched_filter _ -> "sched.filter"
  | Sched_result _ -> "sched.result"
  | Map_update _ -> "ebpf.map_update"
  | Prog_run _ -> "ebpf.run"
  | Rp_select _ -> "reuseport.select"
  | Rp_drop _ -> "reuseport.drop"
  | Accept _ -> "worker.accept"
  | Close _ -> "worker.close"
  | Wst_write _ -> "wst.write"
  | Probe_timeout _ -> "probe.timeout"
  | Verifier_verdict _ -> "verifier.verdict"
  | Fault_inject _ -> "fault.inject"
  | Fault_clear _ -> "fault.clear"
  | Splice_attach _ -> "splice.attach"
  | Splice_redirect _ -> "splice.redirect"
  | Splice_teardown _ -> "splice.teardown"

let json_of_record r =
  Printf.sprintf "{\"seq\":%d,\"t\":%d,\"ev\":%s,%s}" r.seq r.time
    (json_string (event_name r.event))
    (json_fields r.event)

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)

let ring_sink ring = { write = (fun r -> Ring.write ring r); close = (fun () -> ()) }

let jsonl_sink oc =
  {
    write =
      (fun r ->
        output_string oc (json_of_record r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let text_sink oc =
  {
    write =
      (fun r ->
        output_string oc (render r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

(* ------------------------------------------------------------------ *)
(* Compact binary trace format                                          *)

module Binary = struct
  (* Append-only little-endian 64-bit-word stream: an 8-byte magic,
     then framed records

         word0 = event tag (bits 0..7) | payload word count (bits 8..)
         word1 = seq   (tag 0: intern id)
         word2 = time  (tag 0: string byte length)
         payload words

     Strings are interned: the first use of each distinct string emits
     a tag-0 definition record (zero-padded raw bytes), and events
     refer to strings by id.  Fixed-width framing keeps the stream
     mmap-able and seekable without parsing: any reader can skip a
     record from its header alone.  A JSONL trace line runs ~120-250
     bytes; the binary form of the same event is 3-9 words. *)

  let magic = "HTRCBIN1"

  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

  let policy_code = function Lifo -> 0 | Rr -> 1 | All -> 2 | Fifo -> 3

  let policy_of_code = function
    | 0 -> Lifo
    | 1 -> Rr
    | 2 -> All
    | 3 -> Fifo
    | n -> corrupt "bad policy code %d" n

  let via_code = function Prog -> 0 | Hash -> 1
  let via_of_code = function 0 -> Prog | 1 -> Hash | n -> corrupt "bad via code %d" n
  let column_code = function Avail -> 0 | Busy -> 1 | Conn -> 2

  let column_of_code = function
    | 0 -> Avail
    | 1 -> Busy
    | 2 -> Conn
    | n -> corrupt "bad column code %d" n

  let io_code = function Accept_io -> 0 | Read_io -> 1
  let io_of_code = function 0 -> Accept_io | 1 -> Read_io | n -> corrupt "bad io code %d" n

  let bool_of_word = function 0 -> false | 1 -> true | n -> corrupt "bad bool word %d" n

  (* ---------------- writer ---------------- *)

  type writer = {
    oc : out_channel;
    mutable scratch : Bytes.t;  (* reused per record; grown on demand *)
    interned : (string, int) Hashtbl.t;
    mutable next_string : int;
  }

  let ensure w len =
    if Bytes.length w.scratch < len then begin
      let cap = ref (Bytes.length w.scratch) in
      while !cap < len do
        cap := !cap * 2
      done;
      w.scratch <- Bytes.create !cap
    end

  let header w ~tag ~nwords ~w1 ~w2 =
    ensure w ((3 + nwords) * 8);
    Bytes.set_int64_le w.scratch 0 (Int64.of_int (tag lor (nwords lsl 8)));
    Bytes.set_int64_le w.scratch 8 (Int64.of_int w1);
    Bytes.set_int64_le w.scratch 16 (Int64.of_int w2)

  let put w i v = Bytes.set_int64_le w.scratch (24 + (i * 8)) (Int64.of_int v)
  let put64 w i v = Bytes.set_int64_le w.scratch (24 + (i * 8)) v
  let flush_record w ~nwords = output w.oc w.scratch 0 ((3 + nwords) * 8)

  let intern w s =
    match Hashtbl.find_opt w.interned s with
    | Some id -> id
    | None ->
      let id = w.next_string in
      w.next_string <- id + 1;
      Hashtbl.add w.interned s id;
      let len = String.length s in
      let nwords = (len + 7) / 8 in
      header w ~tag:0 ~nwords ~w1:id ~w2:len;
      if nwords > 0 then Bytes.fill w.scratch 24 (nwords * 8) '\000';
      Bytes.blit_string s 0 w.scratch 24 len;
      flush_record w ~nwords;
      id

  let write_record w { seq; time; event } =
    match event with
    | Wq_wake { policy; queue; woken; steps } ->
      let ql = List.length queue and wl = List.length woken in
      let nwords = 4 + ql + wl in
      header w ~tag:1 ~nwords ~w1:seq ~w2:time;
      put w 0 (policy_code policy);
      put w 1 steps;
      put w 2 ql;
      List.iteri (fun i x -> put w (3 + i) x) queue;
      put w (3 + ql) wl;
      List.iteri (fun i x -> put w (4 + ql + i) x) woken;
      flush_record w ~nwords
    | Epoll_dispatch { worker; events } ->
      let n = List.length events in
      let nwords = 2 + (3 * n) in
      header w ~tag:2 ~nwords ~w1:seq ~w2:time;
      put w 0 worker;
      put w 1 n;
      List.iteri
        (fun i (fd, k, units) ->
          put w (2 + (3 * i)) fd;
          put w (3 + (3 * i)) (io_code k);
          put w (4 + (3 * i)) units)
        events;
      flush_record w ~nwords
    | Sched_filter { stage; cutoff; survivors; live } ->
      let stage_id = intern w stage in
      header w ~tag:3 ~nwords:4 ~w1:seq ~w2:time;
      put w 0 stage_id;
      put64 w 1 (Int64.bits_of_float cutoff);
      put64 w 2 survivors;
      put w 3 live;
      flush_record w ~nwords:4
    | Sched_result { bitmap; passed; total; after_time } ->
      header w ~tag:4 ~nwords:4 ~w1:seq ~w2:time;
      put64 w 0 bitmap;
      put w 1 passed;
      put w 2 total;
      put w 3 after_time;
      flush_record w ~nwords:4
    | Map_update { map; key; value } ->
      let map_id = intern w map in
      header w ~tag:5 ~nwords:3 ~w1:seq ~w2:time;
      put w 0 map_id;
      put w 1 key;
      put64 w 2 value;
      flush_record w ~nwords:3
    | Prog_run { prog; flow_hash; outcome; cycles } ->
      let prog_id = intern w prog in
      let outcome_id = intern w outcome in
      header w ~tag:6 ~nwords:4 ~w1:seq ~w2:time;
      put w 0 prog_id;
      put w 1 flow_hash;
      put w 2 outcome_id;
      put w 3 cycles;
      flush_record w ~nwords:4
    | Rp_select { port; flow_hash; via; slot } ->
      header w ~tag:7 ~nwords:4 ~w1:seq ~w2:time;
      put w 0 port;
      put w 1 flow_hash;
      put w 2 (via_code via);
      put w 3 slot;
      flush_record w ~nwords:4
    | Rp_drop { port; flow_hash } ->
      header w ~tag:8 ~nwords:2 ~w1:seq ~w2:time;
      put w 0 port;
      put w 1 flow_hash;
      flush_record w ~nwords:2
    | Accept { worker; conn } ->
      header w ~tag:9 ~nwords:2 ~w1:seq ~w2:time;
      put w 0 worker;
      put w 1 conn;
      flush_record w ~nwords:2
    | Close { worker; conn; reset } ->
      header w ~tag:10 ~nwords:3 ~w1:seq ~w2:time;
      put w 0 worker;
      put w 1 conn;
      put w 2 (if reset then 1 else 0);
      flush_record w ~nwords:3
    | Wst_write { worker; column; value } ->
      header w ~tag:11 ~nwords:3 ~w1:seq ~w2:time;
      put w 0 worker;
      put w 1 (column_code column);
      put w 2 value;
      flush_record w ~nwords:3
    | Probe_timeout { tenant; after } ->
      header w ~tag:12 ~nwords:2 ~w1:seq ~w2:time;
      put w 0 tenant;
      put w 1 after;
      flush_record w ~nwords:2
    | Verifier_verdict { prog; backend; accepted; insns; visited; proved; residual; reason }
      ->
      let prog_id = intern w prog in
      let backend_id = intern w backend in
      let reason_id = intern w reason in
      header w ~tag:13 ~nwords:8 ~w1:seq ~w2:time;
      put w 0 prog_id;
      put w 1 backend_id;
      put w 2 (if accepted then 1 else 0);
      put w 3 insns;
      put w 4 visited;
      put w 5 proved;
      put w 6 residual;
      put w 7 reason_id;
      flush_record w ~nwords:8
    | Fault_inject { fault; worker; arg } ->
      let fault_id = intern w fault in
      header w ~tag:14 ~nwords:3 ~w1:seq ~w2:time;
      put w 0 fault_id;
      put w 1 worker;
      put w 2 arg;
      flush_record w ~nwords:3
    | Fault_clear { fault; worker } ->
      let fault_id = intern w fault in
      header w ~tag:15 ~nwords:2 ~w1:seq ~w2:time;
      put w 0 fault_id;
      put w 1 worker;
      flush_record w ~nwords:2
    | Splice_attach { conn; worker; key } ->
      header w ~tag:16 ~nwords:3 ~w1:seq ~w2:time;
      put w 0 conn;
      put w 1 worker;
      put w 2 key;
      flush_record w ~nwords:3
    | Splice_redirect { conn; worker; bytes; copied } ->
      header w ~tag:17 ~nwords:4 ~w1:seq ~w2:time;
      put w 0 conn;
      put w 1 worker;
      put w 2 bytes;
      put w 3 copied;
      flush_record w ~nwords:4
    | Splice_teardown { conn; worker; key; reason } ->
      let reason_id = intern w reason in
      header w ~tag:18 ~nwords:4 ~w1:seq ~w2:time;
      put w 0 conn;
      put w 1 worker;
      put w 2 key;
      put w 3 reason_id;
      flush_record w ~nwords:4

  let sink oc =
    output_string oc magic;
    let w =
      { oc; scratch = Bytes.create 512; interned = Hashtbl.create 64; next_string = 0 }
    in
    { write = (fun r -> write_record w r); close = (fun () -> flush oc) }

  (* ---------------- decoder ---------------- *)

  let iter_channel ic f =
    let hdr = Bytes.create 24 in
    (try really_input ic hdr 0 8
     with End_of_file -> corrupt "truncated file: missing magic");
    if Bytes.sub_string hdr 0 8 <> magic then
      corrupt "bad magic %S (want %S)" (Bytes.sub_string hdr 0 8) magic;
    let strings = Hashtbl.create 64 in
    let payload = ref (Bytes.create 512) in
    let finished = ref false in
    while not !finished do
      (* A record boundary is the only place clean EOF is legal. *)
      let n = input ic hdr 0 24 in
      if n = 0 then finished := true
      else begin
        (try really_input ic hdr n (24 - n)
         with End_of_file -> corrupt "truncated record header");
        let w0 = Int64.to_int (Bytes.get_int64_le hdr 0) in
        let tag = w0 land 0xff in
        let nwords = w0 lsr 8 in
        if nwords < 0 || nwords > 0xFFFFFF then
          corrupt "implausible record size (%d words)" nwords;
        let w1 = Int64.to_int (Bytes.get_int64_le hdr 8) in
        let w2 = Int64.to_int (Bytes.get_int64_le hdr 16) in
        if Bytes.length !payload < nwords * 8 then
          payload := Bytes.create (nwords * 8);
        (try really_input ic !payload 0 (nwords * 8)
         with End_of_file -> corrupt "truncated record payload (tag %d)" tag);
        let word i =
          if i < 0 || i >= nwords then
            corrupt "record payload overrun (tag %d, word %d of %d)" tag i nwords;
          Bytes.get_int64_le !payload (i * 8)
        in
        let wi i = Int64.to_int (word i) in
        let str i =
          let id = wi i in
          match Hashtbl.find_opt strings id with
          | Some s -> s
          | None -> corrupt "undefined string id %d" id
        in
        let exact n = if nwords <> n then corrupt "tag %d: %d words, want %d" tag nwords n in
        let list_len i =
          let n = wi i in
          if n < 0 || n > nwords then corrupt "bad list length %d" n;
          n
        in
        if tag = 0 then begin
          if w2 < 0 || (w2 + 7) / 8 <> nwords then
            corrupt "string def: %d bytes in %d words" w2 nwords;
          Hashtbl.replace strings w1 (Bytes.sub_string !payload 0 w2)
        end
        else begin
          let event =
            match tag with
            | 1 ->
              let policy = policy_of_code (wi 0) in
              let steps = wi 1 in
              let ql = list_len 2 in
              let queue = List.init ql (fun i -> wi (3 + i)) in
              let wl = list_len (3 + ql) in
              let woken = List.init wl (fun i -> wi (4 + ql + i)) in
              exact (4 + ql + wl);
              Wq_wake { policy; queue; woken; steps }
            | 2 ->
              let worker = wi 0 in
              let n = list_len 1 in
              let events =
                List.init n (fun i ->
                    (wi (2 + (3 * i)), io_of_code (wi (3 + (3 * i))), wi (4 + (3 * i))))
              in
              exact (2 + (3 * n));
              Epoll_dispatch { worker; events }
            | 3 ->
              exact 4;
              Sched_filter
                {
                  stage = str 0;
                  cutoff = Int64.float_of_bits (word 1);
                  survivors = word 2;
                  live = wi 3;
                }
            | 4 ->
              exact 4;
              Sched_result
                { bitmap = word 0; passed = wi 1; total = wi 2; after_time = wi 3 }
            | 5 ->
              exact 3;
              Map_update { map = str 0; key = wi 1; value = word 2 }
            | 6 ->
              exact 4;
              Prog_run
                { prog = str 0; flow_hash = wi 1; outcome = str 2; cycles = wi 3 }
            | 7 ->
              exact 4;
              Rp_select
                { port = wi 0; flow_hash = wi 1; via = via_of_code (wi 2); slot = wi 3 }
            | 8 ->
              exact 2;
              Rp_drop { port = wi 0; flow_hash = wi 1 }
            | 9 ->
              exact 2;
              Accept { worker = wi 0; conn = wi 1 }
            | 10 ->
              exact 3;
              Close { worker = wi 0; conn = wi 1; reset = bool_of_word (wi 2) }
            | 11 ->
              exact 3;
              Wst_write { worker = wi 0; column = column_of_code (wi 1); value = wi 2 }
            | 12 ->
              exact 2;
              Probe_timeout { tenant = wi 0; after = wi 1 }
            | 13 ->
              exact 8;
              Verifier_verdict
                {
                  prog = str 0;
                  backend = str 1;
                  accepted = bool_of_word (wi 2);
                  insns = wi 3;
                  visited = wi 4;
                  proved = wi 5;
                  residual = wi 6;
                  reason = str 7;
                }
            | 14 ->
              exact 3;
              Fault_inject { fault = str 0; worker = wi 1; arg = wi 2 }
            | 15 ->
              exact 2;
              Fault_clear { fault = str 0; worker = wi 1 }
            | 16 ->
              exact 3;
              Splice_attach { conn = wi 0; worker = wi 1; key = wi 2 }
            | 17 ->
              exact 4;
              Splice_redirect
                { conn = wi 0; worker = wi 1; bytes = wi 2; copied = wi 3 }
            | 18 ->
              exact 4;
              Splice_teardown
                { conn = wi 0; worker = wi 1; key = wi 2; reason = str 3 }
            | t -> corrupt "unknown record tag %d" t
          in
          f { seq = w1; time = w2; event }
        end
      end
    done

  let read_channel ic =
    let acc = ref [] in
    iter_channel ic (fun r -> acc := r :: !acc);
    List.rev !acc

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
end
