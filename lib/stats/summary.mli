(** Exact summary statistics over small sample sets.

    Where a histogram's bucketed quantiles are too coarse — e.g. the
    per-worker CPU-utilization standard deviations of Fig. 13, computed
    over 32 workers — these helpers operate on the raw samples. *)

val mean : float array -> float
(** 0 on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for fewer than 2 samples. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the nearest-rank percentile of a copy-sorted
    [xs] (total [Float.compare] order).  @raise Invalid_argument on an
    empty array, p outside [0, 100], or any NaN sample — NaN has no
    rank, so admitting it would make the result order-dependent. *)

val coefficient_of_variation : float array -> float
(** stddev / mean; 0 when the mean is 0. *)

val jain_fairness : float array -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)]: 1.0 is perfectly
    balanced, 1/n is maximally skewed.  Used as an extra balance metric
    alongside the paper's standard deviations. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val of_array : float array -> t
(** All-zeros summary for an empty array. *)

val pp : Format.formatter -> t -> unit
