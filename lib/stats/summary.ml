let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    sqrt (!acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Summary.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p in 0..100";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Summary.percentile: NaN input")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let rank = if rank < 1 then 1 else rank in
  sorted.(rank - 1)

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. m

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)
  end

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let of_array xs =
  let n = Array.length xs in
  if n = 0 then
    { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }
  else
    let lo, hi = min_max xs in
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      min = lo;
      max = hi;
      p50 = percentile xs 50.0;
      p90 = percentile xs 90.0;
      p99 = percentile xs 99.0;
    }

let pp fmt t =
  Format.fprintf fmt
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    t.n t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
