(** Log-bucketed latency histogram.

    Records non-negative values (latencies in nanoseconds, event counts,
    sizes) into geometrically spaced buckets, giving bounded relative
    quantile error with O(1) recording — the standard HdrHistogram-style
    trick.  Every latency percentile reported in EXPERIMENTS.md comes
    out of one of these. *)

type t

val create : ?significant_digits:int -> ?max_value:float -> unit -> t
(** [create ()] covers [\[0, max_value\]] (default 1e12, i.e. 1000 s in
    nanoseconds) with roughly [10^(-significant_digits)] relative error
    (default 2 digits, ~1%). *)

val record : t -> float -> unit
(** Record one observation.  Negative values raise
    [Invalid_argument]; values beyond [max_value] are clamped into the
    top bucket. *)

val record_n : t -> float -> int -> unit
(** Record the same value [n] times (cheap bulk insert). *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of recorded values.  0 when empty. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]].  Returns the upper edge of
    the bucket containing the p-th ordered observation; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation of the {e exact} recorded values
    (Welford running moments, stable for large-magnitude samples such
    as ns timestamps); 0 for fewer than 2 samples. *)

val bucket_count : t -> int
(** Number of buckets in this histogram's layout (a cheap layout
    fingerprint for tests; equal counts do {e not} imply equal
    layouts). *)

val merge_into : src:t -> dst:t -> unit
(** Add all of [src]'s observations into [dst].  The two histograms
    must have identical bucket layouts — same [significant_digits] and
    [max_value]; anything else raises [Invalid_argument], including
    layouts that merely coincide in bucket count. *)

val reset : t -> unit

val cdf_points : t -> (float * float) list
(** [(value, cumulative_fraction)] pairs for the non-empty buckets, in
    increasing value order — ready to print as a CDF series. *)
