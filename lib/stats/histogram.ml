type t = {
  buckets : int array;
  bucket_scale : float; (* buckets per factor of e *)
  linear_limit : float; (* values below this go to linear buckets *)
  linear_buckets : int;
  max_recordable : float;
  mutable n : int;
  mutable sum : float;
  (* Running mean and centred second moment (Welford): the naive
     sum-of-squares formula cancels catastrophically once samples reach
     ~1e8 (ns timestamps), reporting 0 or NaN stddev for tight
     distributions around a large mean. *)
  mutable mean_acc : float;
  mutable m2 : float;
  mutable minimum : float;
  mutable maximum : float;
}

(* Layout: [linear_buckets] unit-width buckets for [0, linear_limit),
   then log buckets above.  Index of value v >= linear_limit is
   linear_buckets + floor(bucket_scale * ln (v / linear_limit)). *)

let create ?(significant_digits = 2) ?(max_value = 1e12) () =
  if significant_digits < 1 || significant_digits > 4 then
    invalid_arg "Histogram.create: significant_digits in 1..4";
  if max_value <= 1.0 then invalid_arg "Histogram.create: max_value too small";
  let rel_err = 10.0 ** float_of_int (-significant_digits) in
  (* Choose bucket width so (edge ratio - 1) <= 2*rel_err. *)
  let bucket_scale = 1.0 /. log (1.0 +. (2.0 *. rel_err)) in
  let linear_limit = 1.0 /. rel_err in
  let linear_buckets = int_of_float linear_limit in
  let log_buckets =
    int_of_float (ceil (bucket_scale *. log (max_value /. linear_limit))) + 2
  in
  {
    buckets = Array.make (linear_buckets + log_buckets) 0;
    bucket_scale;
    linear_limit;
    linear_buckets;
    max_recordable = max_value;
    n = 0;
    sum = 0.0;
    mean_acc = 0.0;
    m2 = 0.0;
    minimum = infinity;
    maximum = neg_infinity;
  }

let index_of t v =
  if v < t.linear_limit then int_of_float v
  else
    let i =
      t.linear_buckets
      + int_of_float (t.bucket_scale *. log (v /. t.linear_limit))
    in
    min i (Array.length t.buckets - 1)

let value_of t i =
  (* Representative value of bucket i: exact for unit-width linear
     buckets, geometric midpoint for log buckets (halves the relative
     quantile error vs reporting an edge). *)
  if i < t.linear_buckets then float_of_int (i + 1)
  else
    t.linear_limit
    *. exp ((float_of_int (i - t.linear_buckets) +. 0.5) /. t.bucket_scale)

let record_n t v n =
  if v < 0.0 then invalid_arg "Histogram.record: negative value";
  if n < 0 then invalid_arg "Histogram.record_n: negative count";
  if n > 0 then begin
    let v' = if v > t.max_recordable then t.max_recordable else v in
    let i = index_of t v' in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.n <- t.n + n;
    let fn = float_of_int n in
    t.sum <- t.sum +. (v *. fn);
    let delta = v -. t.mean_acc in
    t.mean_acc <- t.mean_acc +. (delta *. fn /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (v -. t.mean_acc) *. fn);
    if v < t.minimum then t.minimum <- v;
    if v > t.maximum then t.maximum <- v
  end

let record t v = record_n t v 1
let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else t.minimum
let max_value t = if t.n = 0 then 0.0 else t.maximum

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p in 0..100";
  if t.n = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else r
    in
    let acc = ref 0 in
    let result = ref t.maximum in
    (try
       for i = 0 to Array.length t.buckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= rank then begin
           result := value_of t i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Never report beyond the observed maximum. *)
    if !result > t.maximum then t.maximum else !result
  end

let stddev t =
  if t.n < 2 then 0.0
  else
    let var = t.m2 /. float_of_int t.n in
    if var <= 0.0 then 0.0 else sqrt var

let bucket_count t = Array.length t.buckets

let merge_into ~src ~dst =
  (* Equal bucket-array lengths are not equal layouts: different
     (significant_digits, max_value) pairs can coincide in length while
     disagreeing on every bucket boundary, silently merging into
     garbage.  Compare the derived layout parameters themselves. *)
  if
    Array.length src.buckets <> Array.length dst.buckets
    || src.bucket_scale <> dst.bucket_scale
    || src.linear_limit <> dst.linear_limit
    || src.max_recordable <> dst.max_recordable
  then invalid_arg "Histogram.merge_into: layout mismatch";
  Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets;
  (* Chan et al. parallel combine for the centred moments. *)
  if src.n > 0 then begin
    let na = float_of_int dst.n and nb = float_of_int src.n in
    let total = na +. nb in
    let delta = src.mean_acc -. dst.mean_acc in
    dst.m2 <- dst.m2 +. src.m2 +. (delta *. delta *. na *. nb /. total);
    dst.mean_acc <- dst.mean_acc +. (delta *. nb /. total)
  end;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.minimum < dst.minimum then dst.minimum <- src.minimum;
  if src.maximum > dst.maximum then dst.maximum <- src.maximum

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.mean_acc <- 0.0;
  t.m2 <- 0.0;
  t.minimum <- infinity;
  t.maximum <- neg_infinity

let cdf_points t =
  if t.n = 0 then []
  else begin
    let points = ref [] in
    let acc = ref 0 in
    for i = 0 to Array.length t.buckets - 1 do
      if t.buckets.(i) > 0 then begin
        acc := !acc + t.buckets.(i);
        points := (value_of t i, float_of_int !acc /. float_of_int t.n) :: !points
      end
    done;
    List.rev !points
  end
