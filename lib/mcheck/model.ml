(* Systematic concurrency checker in the dscheck style (Kokologiannakis
   et al. lineage: stateless model checking with dynamic partial-order
   reduction, Flanagan & Godefroid POPL 2005, plus sleep sets and an
   optional preemption bound).

   The program under test is ordinary OCaml code written against
   {!Mcheck_shim.PRIM} and instantiated with the {!P} implementation
   below.  Every atomic / mutex / condition / thread operation performs
   an effect carrying a descriptor of the operation (its locations,
   whether it writes, an enabledness predicate and a state mutation);
   the one-shot continuation is captured, so the explorer owns the
   schedule: all "threads" are fibers multiplexed cooperatively on the
   calling domain, and an interleaving is just the sequence of fibers
   the driver chooses to advance.  Re-running the (deterministic)
   program under a different forced schedule prefix enumerates a
   different interleaving; DPOR computes which prefixes can lead to
   non-equivalent behaviour, so only one representative per
   Mazurkiewicz trace is executed (plus sleep-set pruning of the
   remaining redundancy).

   Two analyses run on top of the exploration:

   - A vector-clock happens-before race detector over {e non-atomic}
     accesses ([P.Plain] cells and [P.Array] elements).  Plain
     accesses are not scheduling points — their ordering is determined
     by the surrounding synchronisation, which the explorer already
     enumerates exhaustively — so flagging "two conflicting plain
     accesses unordered by happens-before in some explored
     interleaving" is a sound race check at a fraction of the state
     space.  Happens-before here is program order plus the
     dependent-operation order on atomics (every same-location pair
     with at least one write), mutex and condvar edges, and
     spawn/join.

   - Deadlock / lost-wakeup detection: a state where some thread is
     blocked (mutex, condition wait, join) and no thread is runnable
     is reported as a counterexample with the full interleaving, which
     is exactly how a lost [Condition.signal] manifests.

   Model restrictions (documented, checked where cheap): programs must
   be deterministic given the schedule (no wall clock, no Random);
   [Condition.signal] wakes the longest-waiting thread (FIFO) rather
   than an arbitrary one; spurious wakeups are not modelled; at most
   {!max_threads} fibers. *)

let max_threads = 16

type op = {
  locs : int list; (* abstract location ids this op touches *)
  writes : bool; (* false only for pure reads *)
  descr : string;
  enabled : unit -> bool;
  execute : unit -> unit; (* state mutation, applied at schedule time *)
}

type _ Effect.t += Suspend : op -> unit Effect.t

exception Model_violation of string

type thread = {
  tid : int;
  tname : string;
  mutable body : (unit -> unit) option; (* Some until first scheduled *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable pending : op option;
  mutable finished : bool;
  mutable steps_done : int;
  clock : int array; (* vector clock, length max_threads *)
  mutable woken : bool; (* condvar wakeup flag *)
}

type plain_access = {
  a_tid : int;
  a_ord : int; (* accessor's own clock entry at access time *)
  a_write : bool;
  a_who : string;
}

type race = { loc : string; access_a : string; access_b : string }

type exec = {
  mutable threads : thread array;
  mutable nthreads : int;
  mutable cur : int; (* tid currently running a segment *)
  mutable next_loc : int;
  wclocks : (int, int array) Hashtbl.t; (* per-loc writer clock *)
  rclocks : (int, int array) Hashtbl.t; (* per-loc reader clock *)
  plains : (int * int, plain_access list ref) Hashtbl.t;
  mutable exec_races : (string * plain_access * plain_access) list;
}

exception Thread_failure of int * exn

let cur_exec : exec option ref = ref None

let the_exec what =
  match !cur_exec with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf
         "Mcheck.Model.P.%s used outside Model.check (the shim primitives \
          only run under the explorer)"
         what)

let fresh_loc e name =
  let id = e.next_loc in
  e.next_loc <- id + 1;
  ignore name;
  id

let always () = true
let noop () = ()

let susp ?(locs = []) ?(writes = true) ?(enabled = always) ?(execute = noop)
    descr =
  Effect.perform (Suspend { locs; writes; descr; enabled; execute })

let join_into dst src =
  for i = 0 to max_threads - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let loc_clock tbl loc =
  match Hashtbl.find_opt tbl loc with
  | Some c -> c
  | None ->
    let c = Array.make max_threads 0 in
    Hashtbl.replace tbl loc c;
    c

(* Non-atomic access recording + happens-before race check.  [prior]
   happens-before the current access iff the current thread's clock
   has absorbed prior's epoch.  A plain access in the segment after a
   thread's k-th scheduling step belongs to epoch k+1: it is only
   published to other threads by the thread's NEXT release step (whose
   ord is k+1) — stamping it with k would make it look covered by any
   edge that absorbed step k (e.g. a spawn immediately before it). *)
let record_plain e ~obj ~idx ~write ~who ~locname =
  let t = e.threads.(e.cur) in
  let key = (obj, idx) in
  let hist =
    match Hashtbl.find_opt e.plains key with
    | Some h -> h
    | None ->
      let h = ref [] in
      Hashtbl.replace e.plains key h;
      h
  in
  let epoch = t.clock.(t.tid) + 1 in
  List.iter
    (fun prior ->
      if
        prior.a_tid <> t.tid
        && (prior.a_write || write)
        && t.clock.(prior.a_tid) < prior.a_ord
      then
        e.exec_races <-
          ( locname,
            prior,
            { a_tid = t.tid; a_ord = epoch; a_write = write; a_who = who } )
          :: e.exec_races)
    !hist;
  hist :=
    { a_tid = t.tid; a_ord = epoch; a_write = write; a_who = who } :: !hist

(* ------------------------------------------------------------------ *)
(* The scheduler-controlled PRIM implementation                         *)

(* Not sealed here ([register] is driver-internal); the .mli constrains
   the visible P to Mcheck_shim.PRIM. *)
module P = struct
  module Atomic = struct
    type 'a t = { aid : int; aname : string; mutable av : 'a }

    let make ?(name = "atomic") v =
      let e = the_exec "Atomic.make" in
      { aid = fresh_loc e name; aname = name; av = v }

    let get a =
      susp ~locs:[ a.aid ] ~writes:false (a.aname ^ ".get");
      a.av

    let set a v =
      susp ~locs:[ a.aid ] (a.aname ^ ".set");
      a.av <- v

    let compare_and_set a expect nv =
      susp ~locs:[ a.aid ] (a.aname ^ ".cas");
      if a.av == expect then begin
        a.av <- nv;
        true
      end
      else false

    let fetch_and_add a d =
      susp ~locs:[ a.aid ] (a.aname ^ ".fetch_and_add");
      let old = a.av in
      a.av <- old + d;
      old

    let incr a = ignore (fetch_and_add a 1)
    let decr a = ignore (fetch_and_add a (-1))
  end

  module Plain = struct
    type 'a t = { pid : int; pname : string; mutable pv : 'a }

    let make ?(name = "plain") v =
      let e = the_exec "Plain.make" in
      { pid = fresh_loc e name; pname = name; pv = v }

    let get c =
      let e = the_exec "Plain.get" in
      record_plain e ~obj:c.pid ~idx:0 ~write:false
        ~who:(Printf.sprintf "read by %s" e.threads.(e.cur).tname)
        ~locname:c.pname;
      c.pv

    let set c v =
      let e = the_exec "Plain.set" in
      record_plain e ~obj:c.pid ~idx:0 ~write:true
        ~who:(Printf.sprintf "write by %s" e.threads.(e.cur).tname)
        ~locname:c.pname;
      c.pv <- v
  end

  module Array = struct
    type 'a t = { arid : int; arname : string; marr : 'a array }

    let make ?(name = "array") n v =
      let e = the_exec "Array.make" in
      { arid = fresh_loc e name; arname = name; marr = Stdlib.Array.make n v }

    let get a i =
      let e = the_exec "Array.get" in
      record_plain e ~obj:a.arid ~idx:i ~write:false
        ~who:(Printf.sprintf "read by %s" e.threads.(e.cur).tname)
        ~locname:(Printf.sprintf "%s[%d]" a.arname i);
      a.marr.(i)

    let set a i v =
      let e = the_exec "Array.set" in
      record_plain e ~obj:a.arid ~idx:i ~write:true
        ~who:(Printf.sprintf "write by %s" e.threads.(e.cur).tname)
        ~locname:(Printf.sprintf "%s[%d]" a.arname i);
      a.marr.(i) <- v

    let length a = Stdlib.Array.length a.marr
  end

  module Mutex = struct
    type t = { mid : int; mname : string; mutable holder : int }

    let create ?(name = "mutex") () =
      let e = the_exec "Mutex.create" in
      { mid = fresh_loc e name; mname = name; holder = -1 }

    let lock m =
      let e = the_exec "Mutex.lock" in
      let me = e.cur in
      susp ~locs:[ m.mid ]
        ~enabled:(fun () -> m.holder < 0)
        ~execute:(fun () -> m.holder <- me)
        (m.mname ^ ".lock")

    let unlock m =
      let e = the_exec "Mutex.unlock" in
      let me = e.cur in
      susp ~locs:[ m.mid ]
        ~execute:(fun () ->
          if m.holder <> me then
            raise
              (Model_violation
                 (Printf.sprintf "%s.unlock by T%d but holder is %d" m.mname me
                    m.holder));
          m.holder <- -1)
        (m.mname ^ ".unlock")
  end

  module Condition = struct
    type t = { cid : int; cname : string; mutable waiters : int list }

    let create ?(name = "cond") () =
      let e = the_exec "Condition.create" in
      { cid = fresh_loc e name; cname = name; waiters = [] }

    (* Two scheduling points so the mutex hand-off is visible to the
       dependency analysis: the release step parks the thread, the
       wake step re-acquires.  Between them the thread is disabled
       until a signal sets its [woken] flag — if that signal never
       comes, the deadlock detector reports the lost wakeup. *)
    let wait c (m : Mutex.t) =
      let e = the_exec "Condition.wait" in
      let me = e.cur in
      let t = Stdlib.Array.get e.threads me in
      susp
        ~locs:[ c.cid; m.Mutex.mid ]
        ~execute:(fun () ->
          if m.Mutex.holder <> me then
            raise
              (Model_violation
                 (Printf.sprintf "%s.wait by T%d without holding %s" c.cname me
                    m.Mutex.mname));
          m.Mutex.holder <- -1;
          c.waiters <- c.waiters @ [ me ])
        (c.cname ^ ".wait(release " ^ m.Mutex.mname ^ ")");
      susp
        ~locs:[ c.cid; m.Mutex.mid ]
        ~enabled:(fun () -> t.woken && m.Mutex.holder < 0)
        ~execute:(fun () ->
          t.woken <- false;
          m.Mutex.holder <- me)
        (c.cname ^ ".wake(acquire " ^ m.Mutex.mname ^ ")")

    let signal c =
      let e = the_exec "Condition.signal" in
      susp ~locs:[ c.cid ]
        ~execute:(fun () ->
          match c.waiters with
          | [] -> ()
          | w :: rest ->
            c.waiters <- rest;
            (Stdlib.Array.get e.threads w).woken <- true)
        (c.cname ^ ".signal")

    let broadcast c =
      let e = the_exec "Condition.broadcast" in
      susp ~locs:[ c.cid ]
        ~execute:(fun () ->
          List.iter
            (fun w -> (Stdlib.Array.get e.threads w).woken <- true)
            c.waiters;
          c.waiters <- [])
        (c.cname ^ ".broadcast")
  end

  module Thread = struct
    type t = { hid : int; h_tid : int }

    let register e name body parent_clock =
      if e.nthreads >= max_threads then
        raise (Model_violation "too many threads (max 16)");
      let tid = e.nthreads in
      let t =
        {
          tid;
          tname = name;
          body = Some body;
          cont = None;
          pending = None;
          finished = false;
          steps_done = 0;
          clock = Stdlib.Array.make max_threads 0;
          woken = false;
        }
      in
      join_into t.clock parent_clock;
      t.pending <-
        Some
          {
            locs = [];
            writes = false;
            descr = name ^ ".start";
            enabled = always;
            execute = noop;
          };
      Stdlib.Array.set e.threads tid t;
      e.nthreads <- tid + 1;
      tid

    let spawn ?name f =
      let e = the_exec "Thread.spawn" in
      let me = e.cur in
      let name =
        match name with Some n -> n | None -> Printf.sprintf "T%d" e.nthreads
      in
      let hid = fresh_loc e (name ^ ".handle") in
      let cell = ref (-1) in
      susp ~locs:[ hid ]
        ~execute:(fun () ->
          cell := register e name f (Stdlib.Array.get e.threads me).clock)
        ("spawn " ^ name);
      { hid; h_tid = !cell }

    let join h =
      let e = the_exec "Thread.join" in
      let me = e.cur in
      let target () = Stdlib.Array.get e.threads h.h_tid in
      susp ~locs:[ h.hid ]
        ~enabled:(fun () -> (target ()).finished)
        ~execute:(fun () ->
          join_into (Stdlib.Array.get e.threads me).clock (target ()).clock)
        (Printf.sprintf "join %s" (target ()).tname)

    let cpu_relax () = ()
    let self_id () = (the_exec "Thread.self_id").cur
  end
end

(* ------------------------------------------------------------------ *)
(* DFS + DPOR driver                                                    *)

type config = {
  max_interleavings : int;
  max_steps : int;
  preemption_bound : int option;
  dpor : bool; (* false: exhaustive DFS (no reduction) — for differentials *)
}

let default_config =
  {
    max_interleavings = 100_000;
    max_steps = 2_000;
    preemption_bound = None;
    dpor = true;
  }

type counterexample = { kind : string; message : string; trace : string list }

type outcome = {
  name : string;
  executions : int;
  prunes : int;
  steps_total : int;
  max_depth : int;
  races : race list;
  counterexample : counterexample option;
  budget_exhausted : bool;
  bounded : bool;
}

type node = {
  mutable chosen : int;
  mutable backtrack : int; (* bitmasks over tids *)
  mutable sleep : int;
  mutable done_mask : int;
  mutable enabled_mask : int;
  mutable preemptions : int;
  pend_locs : int list array; (* per-tid pending-op summary at this state *)
  pend_writes : bool array;
}

let fresh_node () =
  {
    chosen = -1;
    backtrack = 0;
    sleep = 0;
    done_mask = 0;
    enabled_mask = 0;
    preemptions = 0;
    pend_locs = Array.make max_threads [];
    pend_writes = Array.make max_threads false;
  }

let bit i = 1 lsl i

let intersects l1 l2 = List.exists (fun x -> List.mem x l2) l1

let dependent locs1 w1 locs2 w2 = (w1 || w2) && intersects locs1 locs2

type run_result =
  | R_terminal
  | R_sleep_blocked
  | R_cex of counterexample

type dfs = {
  cfg : config;
  mutable nodes : node array;
  mutable prefix_len : int;
  (* per-step records of the current run, reused across runs *)
  step_proc : int array;
  step_ord : int array;
  step_locs : int list array;
  step_writes : bool array;
  step_descr : string array;
  mutable last_depth : int;
  mutable executions : int;
  mutable prunes : int;
  mutable steps_total : int;
  mutable max_depth : int;
  mutable bounded : bool;
  race_tbl : (string * string * string, unit) Hashtbl.t;
  mutable races : race list;
}

let get_node dfs d =
  if d >= Array.length dfs.nodes then begin
    let bigger = Array.init (2 * (d + 1)) (fun _ -> fresh_node ()) in
    Array.blit dfs.nodes 0 bigger 0 (Array.length dfs.nodes);
    dfs.nodes <- bigger
  end;
  dfs.nodes.(d)

let render_trace dfs depth =
  List.init depth (fun i ->
      Printf.sprintf "%3d. %s" (i + 1) dfs.step_descr.(i))

let handler (t : thread) =
  {
    Effect.Deep.retc =
      (fun () ->
        t.finished <- true;
        (* the final segment (plain accesses after the last scheduling
           step) lives in epoch steps_done+1; bump the thread's own
           clock entry so [join] absorbs it *)
        t.clock.(t.tid) <- t.clock.(t.tid) + 1);
    exnc = (fun e -> raise (Thread_failure (t.tid, e)));
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Suspend o ->
          Some
            (fun (k : (c, unit) Effect.Deep.continuation) ->
              t.cont <- Some k;
              t.pending <- Some o)
        | _ -> None);
  }

(* Dynamic backtrack-point computation, run for each transition as it
   is executed: every earlier step by another thread that is dependent
   with this op and not already happens-before ordered with it (the
   executing thread's vector clock has not absorbed that step's epoch)
   is a reversible race — make sure the other order is explored from
   that step's state.  Taking {e all} such predecessors rather than
   only the most recent over-approximates the classic persistent set
   (never unsound, occasionally redundant — the sleep sets absorb the
   redundancy); restricting to non-happens-before pairs is what makes
   it "dynamic". *)
let add_backtrack_points exec dfs d tid (o : op) =
  if o.locs <> [] then begin
    let pclk = exec.threads.(tid).clock in
    for i = d - 1 downto 0 do
      let q = dfs.step_proc.(i) in
      if
        q <> tid
        && dfs.step_ord.(i) > pclk.(q)
        && dependent dfs.step_locs.(i) dfs.step_writes.(i) o.locs o.writes
      then begin
        let nd = dfs.nodes.(i) in
        if nd.enabled_mask land bit tid <> 0 then
          nd.backtrack <- nd.backtrack lor bit tid
        else nd.backtrack <- nd.backtrack lor nd.enabled_mask
      end
    done
  end

let execute_step exec dfs d tid =
  let t = exec.threads.(tid) in
  let o = match t.pending with Some o -> o | None -> assert false in
  if dfs.cfg.dpor then add_backtrack_points exec dfs d tid o;
  dfs.step_proc.(d) <- tid;
  dfs.step_ord.(d) <- t.steps_done + 1;
  dfs.step_locs.(d) <- o.locs;
  dfs.step_writes.(d) <- o.writes;
  dfs.step_descr.(d) <- Printf.sprintf "[%s] %s" t.tname o.descr;
  t.steps_done <- t.steps_done + 1;
  t.clock.(tid) <- t.steps_done;
  List.iter
    (fun l ->
      let w = loc_clock exec.wclocks l and r = loc_clock exec.rclocks l in
      join_into t.clock w;
      if o.writes then begin
        join_into t.clock r;
        join_into w t.clock
      end
      else join_into r t.clock)
    o.locs;
  o.execute ();
  t.pending <- None;
  exec.cur <- tid;
  match (t.body, t.cont) with
  | Some f, _ ->
    t.body <- None;
    Effect.Deep.match_with f () (handler t)
  | None, Some k ->
    t.cont <- None;
    Effect.Deep.continue k ()
  | None, None -> assert false

let blocked_report exec =
  let b = Buffer.create 128 in
  Array.iteri
    (fun i t ->
      if i < exec.nthreads && not t.finished then
        match t.pending with
        | Some o -> Buffer.add_string b (Printf.sprintf "%s blocked at %s; " t.tname o.descr)
        | None -> ())
    exec.threads;
  Buffer.contents b

(* One execution: replay the forced prefix, then free-run (preferring
   the previously scheduled thread to keep context switches, and with
   them node count, low).  Returns how the run ended and its depth. *)
let run_one dfs scenario final =
  let dummy =
    {
      tid = -1;
      tname = "";
      body = None;
      cont = None;
      pending = None;
      finished = true;
      steps_done = 0;
      clock = [||];
      woken = false;
    }
  in
  let exec =
    {
      threads = Array.make max_threads dummy;
      nthreads = 0;
      cur = 0;
      next_loc = 0;
      wclocks = Hashtbl.create 64;
      rclocks = Hashtbl.create 64;
      plains = Hashtbl.create 64;
      exec_races = [];
    }
  in
  cur_exec := Some exec;
  ignore (P.Thread.register exec "main" scenario (Array.make max_threads 0));
  let d = ref 0 in
  let result = ref R_terminal in
  (try
     let running = ref true in
     while !running do
       (* snapshot the state: enabled set and pending-op summaries *)
       let enabled = ref 0 and live = ref 0 in
       let node = get_node dfs !d in
       for q = 0 to exec.nthreads - 1 do
         let t = exec.threads.(q) in
         if not t.finished then begin
           incr live;
           match t.pending with
           | Some o ->
             node.pend_locs.(q) <- o.locs;
             node.pend_writes.(q) <- o.writes;
             if o.enabled () then enabled := !enabled lor bit q
           | None -> ()
         end
       done;
       node.enabled_mask <- !enabled;
       if !live = 0 then begin
         final ();
         running := false
       end
       else if !enabled = 0 then begin
         result :=
           R_cex
             {
               kind = "deadlock";
               message =
                 "no runnable thread (deadlock or lost wakeup): "
                 ^ blocked_report exec;
               trace = render_trace dfs !d;
             };
         running := false
       end
       else begin
         (* sleep-set inheritance: a thread sleeping at the parent
            state stays asleep unless the step just taken is
            dependent with its pending op *)
         if !d > 0 && !d >= dfs.prefix_len then begin
           let parent = dfs.nodes.(!d - 1) in
           let inherited = ref 0 in
           if dfs.cfg.dpor then
             for q = 0 to exec.nthreads - 1 do
               if
                 parent.sleep land bit q <> 0
                 && not
                      (dependent
                         dfs.step_locs.(!d - 1)
                         dfs.step_writes.(!d - 1)
                         parent.pend_locs.(q) parent.pend_writes.(q))
               then inherited := !inherited lor bit q
             done;
           node.sleep <- !inherited;
           node.done_mask <- 0;
           node.backtrack <- 0;
           node.preemptions <-
             (parent.preemptions
             +
             if
               !d >= 2
               && parent.chosen <> dfs.nodes.(!d - 2).chosen
               && parent.enabled_mask land bit dfs.nodes.(!d - 2).chosen <> 0
             then 1
             else 0)
         end
         else if !d = 0 && dfs.prefix_len = 0 then begin
           node.sleep <- 0;
           node.done_mask <- 0;
           node.backtrack <- 0;
           node.preemptions <- 0
         end;
         let tid =
           if !d < dfs.prefix_len then Some node.chosen
           else begin
             let free = !enabled land lnot node.sleep in
             if free = 0 then None
             else begin
               let prev = if !d > 0 then dfs.nodes.(!d - 1).chosen else -1 in
               if prev >= 0 && free land bit prev <> 0 then Some prev
               else begin
                 let rec lowest q =
                   if free land bit q <> 0 then q else lowest (q + 1)
                 in
                 Some (lowest 0)
               end
             end
           end
         in
         match tid with
         | None ->
           result := R_sleep_blocked;
           running := false
         | Some tid ->
           if !d >= dfs.prefix_len then begin
             node.chosen <- tid;
             node.backtrack <-
               (if dfs.cfg.dpor then node.backtrack lor bit tid
                else node.backtrack lor !enabled)
           end
           else if !enabled land bit tid = 0 then
             raise
               (Model_violation
                  (Printf.sprintf
                     "non-deterministic scenario: scheduled thread %d not \
                      enabled during replay at depth %d"
                     tid !d));
           execute_step exec dfs !d tid;
           incr d;
           dfs.steps_total <- dfs.steps_total + 1;
           if !d >= dfs.cfg.max_steps then begin
             result :=
               R_cex
                 {
                   kind = "step-budget";
                   message =
                     Printf.sprintf
                       "execution exceeded %d steps (livelock or unbounded \
                        loop?)"
                       dfs.cfg.max_steps;
                   trace = render_trace dfs !d;
                 };
             running := false
           end
       end
     done
   with
  | Thread_failure (tid, e) ->
    result :=
      R_cex
        {
          kind = "exception";
          message =
            Printf.sprintf "%s raised %s"
              (if tid < exec.nthreads then exec.threads.(tid).tname
               else Printf.sprintf "T%d" tid)
              (Printexc.to_string e);
          trace = render_trace dfs !d;
        }
  | Model_violation msg ->
    result :=
      R_cex { kind = "violation"; message = msg; trace = render_trace dfs !d });
  (* fold this run's races into the dedup table *)
  List.iter
    (fun (locname, a, b) ->
      let key = (locname, a.a_who, b.a_who) in
      if not (Hashtbl.mem dfs.race_tbl key) then begin
        Hashtbl.replace dfs.race_tbl key ();
        dfs.races <-
          { loc = locname; access_a = a.a_who; access_b = b.a_who } :: dfs.races
      end)
    exec.exec_races;
  cur_exec := None;
  (!result, !d)

(* After a finished run, walk the stack bottom-up from the deepest
   node: retire the branch just explored into the sleep set, and pick
   the deepest state with an unexplored backtrack candidate. *)
let next_branch dfs depth =
  let rec walk i =
    if i < 0 then None
    else begin
      let nd = dfs.nodes.(i) in
      nd.done_mask <- nd.done_mask lor bit nd.chosen;
      nd.sleep <- nd.sleep lor bit nd.chosen;
      let candidates =
        nd.backtrack land lnot nd.done_mask land lnot nd.sleep
        land nd.enabled_mask
      in
      let candidates =
        match dfs.cfg.preemption_bound with
        | None -> candidates
        | Some bound ->
          let filtered = ref 0 in
          for q = 0 to max_threads - 1 do
            if candidates land bit q <> 0 then begin
              let preempt =
                i > 0
                && dfs.nodes.(i - 1).chosen <> q
                && nd.enabled_mask land bit dfs.nodes.(i - 1).chosen <> 0
              in
              if (not preempt) || nd.preemptions < bound then
                filtered := !filtered lor bit q
              else dfs.bounded <- true
            end
          done;
          !filtered
      in
      if candidates <> 0 then begin
        let rec lowest q = if candidates land bit q <> 0 then q else lowest (q + 1) in
        nd.chosen <- lowest 0;
        dfs.prefix_len <- i + 1;
        Some ()
      end
      else walk (i - 1)
    end
  in
  walk (depth - 1)

let check ?(config = default_config) ?(final = fun () -> ()) ~name scenario =
  if !cur_exec <> None then failwith "Mcheck.Model.check is not reentrant";
  let dfs =
    {
      cfg = config;
      nodes = Array.init 64 (fun _ -> fresh_node ());
      prefix_len = 0;
      step_proc = Array.make (config.max_steps + 1) (-1);
      step_ord = Array.make (config.max_steps + 1) 0;
      step_locs = Array.make (config.max_steps + 1) [];
      step_writes = Array.make (config.max_steps + 1) false;
      step_descr = Array.make (config.max_steps + 1) "";
      last_depth = 0;
      executions = 0;
      prunes = 0;
      steps_total = 0;
      max_depth = 0;
      bounded = false;
      race_tbl = Hashtbl.create 32;
      races = [];
    }
  in
  let cex = ref None in
  let budget = ref false in
  (try
     let continue_exploring = ref true in
     while !continue_exploring do
       let result, depth = run_one dfs scenario final in
       dfs.last_depth <- depth;
       if depth > dfs.max_depth then dfs.max_depth <- depth;
       (match result with
       | R_terminal -> dfs.executions <- dfs.executions + 1
       | R_sleep_blocked -> dfs.prunes <- dfs.prunes + 1
       | R_cex c ->
         dfs.executions <- dfs.executions + 1;
         cex := Some c;
         continue_exploring := false);
       if !continue_exploring then
         if dfs.executions + dfs.prunes >= config.max_interleavings then begin
           budget := true;
           continue_exploring := false
         end
         else
           match next_branch dfs depth with
           | Some () -> ()
           | None -> continue_exploring := false
     done
   with e ->
     cur_exec := None;
     raise e);
  {
    name;
    executions = dfs.executions;
    prunes = dfs.prunes;
    steps_total = dfs.steps_total;
    max_depth = dfs.max_depth;
    races = List.rev dfs.races;
    counterexample = !cex;
    budget_exhausted = !budget;
    bounded = dfs.bounded;
  }
