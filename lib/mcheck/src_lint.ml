(* Source lint: the engine and trace libraries must route every
   concurrency primitive through the {!Mcheck_shim.PRIM} shim — a
   functor parameter conventionally named [P], or the zero-cost
   [Mcheck_shim.Real] instance.  A raw [Atomic.] / [Mutex.] /
   [Condition.] / [Domain.spawn] use compiles and runs fine but is
   invisible to the model checker, so its interleavings would be
   silently unexplored; this lint (wired into [hermes_sim verify] and
   CI) turns that hole into a build failure.

   The scan is token-based on comment- and string-stripped source: a
   forbidden module name followed by a dot counts only when it is a
   real dotted-path use whose head compartment is not [Mcheck_shim] or
   [P] (so [P.Atomic.get] and [Mcheck_shim.Real.Atomic] pass, bare
   [Atomic.get] and [Stdlib.Mutex.create] fail). *)

type violation = { file : string; line : int; token : string; context : string }

(* Replace comments (nested, with OCaml's string-aware lexing inside),
   string literals, quoted-string literals [{id|...|id}] and char
   literals with spaces, preserving newlines so line numbers
   survive. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let is_quote_id c = (c >= 'a' && c <= 'z') || c = '_' in
  (* quoted-string opener (brace, id, pipe) at [i]: the delimiter id *)
  let quoted_opener i =
    if i < n && src.[i] = '{' then begin
      let j = ref (i + 1) in
      while !j < n && is_quote_id src.[!j] do
        incr j
      done;
      if !j < n && src.[!j] = '|' then Some (String.sub src (i + 1) (!j - i - 1))
      else None
    end
    else None
  in
  let rec code i =
    if i < n then
      if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
        blank i;
        blank (i + 1);
        comment (i + 2) 1
      end
      else if src.[i] = '"' then begin
        blank i;
        string_lit i (i + 1)
      end
      else
        match quoted_opener i with
        | Some id ->
          blank i;
          quoted_lit id (i + 1)
        | None ->
          if src.[i] = '\'' then char_lit i
          else code (i + 1)
  and comment i depth =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (i + 2) (depth - 1)
    end
    else if src.[i] = '"' then begin
      (* string literals are lexed (and must close) inside comments *)
      blank i;
      in_comment_string (i + 1) depth
    end
    else begin
      blank i;
      comment (i + 1) depth
    end
  and in_comment_string i depth =
    if i >= n then ()
    else if src.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      in_comment_string (i + 2) depth
    end
    else if src.[i] = '"' then begin
      blank i;
      comment (i + 1) depth
    end
    else begin
      blank i;
      in_comment_string (i + 1) depth
    end
  and string_lit start i =
    if i >= n then ()
    else if src.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      string_lit start (i + 2)
    end
    else if src.[i] = '"' then begin
      blank i;
      code (i + 1)
    end
    else begin
      blank i;
      string_lit start (i + 1)
    end
  and quoted_lit id i =
    let close = "|" ^ id ^ "}" in
    let cl = String.length close in
    if i + cl <= n && String.sub src i cl = close then begin
      for k = i to i + cl - 1 do
        blank k
      done;
      code (i + cl)
    end
    else if i >= n then ()
    else begin
      blank i;
      quoted_lit id (i + 1)
    end
  and char_lit i =
    (* ['] is a char literal ['x'] / ['\n'] / ['\xhh'], or a type
       variable quote ['a] — only the literal forms are blanked *)
    if i + 2 < n && src.[i + 1] <> '\\' && src.[i + 1] <> '\'' && src.[i + 2] = '\''
    then begin
      blank i;
      blank (i + 1);
      blank (i + 2);
      code (i + 3)
    end
    else if i + 1 < n && src.[i + 1] = '\\' then begin
      (* escaped char: scan to the closing quote (bounded) *)
      let j = ref (i + 2) in
      while !j < n && !j < i + 6 && src.[!j] <> '\'' do
        incr j
      done;
      if !j < n && src.[!j] = '\'' then begin
        for k = i to !j do
          blank k
        done;
        code (!j + 1)
      end
      else code (i + 1)
    end
    else code (i + 1)
  in
  code 0;
  Bytes.to_string out

let is_ident_char c =
  (c >= 'A' && c <= 'Z')
  || (c >= 'a' && c <= 'z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Walk back over capitalized ["Seg."] prefixes to find the head
   compartment of the dotted path a match at [i] belongs to; [None]
   when the match is itself the head. *)
let path_head text i =
  let rec back i =
    if i >= 2 && text.[i - 1] = '.' then begin
      let j = ref (i - 2) in
      while !j >= 0 && is_ident_char text.[!j] do
        decr j
      done;
      let start = !j + 1 in
      if start <= i - 2 && text.[start] >= 'A' && text.[start] <= 'Z' then
        back start
      else i (* a lowercase prefix (record access etc.) is not a path *)
    end
    else i
  in
  let h = back i in
  if h = i then None
  else begin
    let j = ref h in
    while !j < String.length text && is_ident_char text.[!j] do
      incr j
    done;
    Some (String.sub text h (!j - h))
  end

let allowed_heads = [ "Mcheck_shim"; "P" ]
let forbidden_modules = [ "Atomic"; "Mutex"; "Condition" ]

let line_of text i =
  let l = ref 1 in
  for k = 0 to i - 1 do
    if text.[k] = '\n' then incr l
  done;
  !l

let context_of text i =
  let b = ref i and e = ref i in
  while !b > 0 && text.[!b - 1] <> '\n' do
    decr b
  done;
  while !e < String.length text && text.[!e] <> '\n' do
    incr e
  done;
  String.trim (String.sub text !b (!e - !b))

let scan_source ~file src =
  let text = strip src in
  let n = String.length text in
  let hits = ref [] in
  let word_at i w =
    let wl = String.length w in
    i + wl <= n
    && String.sub text i wl = w
    && (i = 0 || not (is_ident_char text.[i - 1]))
  in
  for i = 0 to n - 1 do
    List.iter
      (fun m ->
        if word_at i (m ^ ".") then begin
          let head, token =
            match path_head text i with
            | None -> (m, m)
            | Some h -> (h, h ^ "..." ^ m)
          in
          if not (List.mem head allowed_heads) then
            hits :=
              { file; line = line_of text i; token; context = context_of text i }
              :: !hits
        end)
      forbidden_modules;
    if word_at i "Domain.spawn" then
      hits :=
        {
          file;
          line = line_of text i;
          token = "Domain.spawn";
          context = context_of text i;
        }
        :: !hits
  done;
  List.rev !hits

let default_dirs = [ "lib/engine"; "lib/trace" ]

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_tree ~root =
  let dirs = List.map (Filename.concat root) default_dirs in
  match List.filter Sys.file_exists dirs with
  | [] ->
    Error
      (Printf.sprintf "no source directories found under %s (looked for %s)"
         root
         (String.concat ", " default_dirs))
  | present ->
    let violations =
      List.concat_map
        (fun dir ->
          Sys.readdir dir |> Array.to_list |> List.sort compare
          |> List.filter is_source
          |> List.concat_map (fun f ->
                 let path = Filename.concat dir f in
                 scan_source ~file:path (read_file path)))
        present
    in
    Ok violations
