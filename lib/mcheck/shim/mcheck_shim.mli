(** Instrumentable concurrency primitives.

    Every piece of multicore code in [lib/engine] and [lib/trace] is
    written against {!PRIM} instead of the raw [Stdlib] modules, either
    as a functor parameter (conventionally named [P]) or through the
    default {!Real} implementation.  That single indirection is what
    lets [Mcheck.Model] substitute a scheduler-controlled
    implementation and systematically enumerate interleavings: the
    production build and the model-checked build run the {e same}
    source, so a property proved under the model is a property of the
    shipped code.

    The source lint ([hermes_sim verify]) rejects raw
    [Atomic.]/[Mutex.]/[Condition.] references in [lib/engine] and
    [lib/trace]; the only sanctioned spellings are [P.Atomic.*] inside
    a [PRIM]-functor and [Mcheck_shim.Real.*] outside one.

    {!Real} costs nothing over the raw primitives: the hot operations
    ([Atomic.get], [compare_and_set], [fetch_and_add], array access)
    are re-exported as the same compiler primitives, so call sites
    compile to the identical instructions — [Trace]'s one-atomic-load
    fast path is unchanged.  Only creation functions (which accept an
    optional [?name] used for model-checker counterexamples) are plain
    functions. *)

(** Interface every shim implementation provides.  Semantics mirror
    the corresponding [Stdlib] modules; [?name] arguments are ignored
    by {!Real} and label locations in [Mcheck.Model] counterexample
    traces and race reports. *)
module type PRIM = sig
  module Atomic : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
    val compare_and_set : 'a t -> 'a -> 'a -> bool
    val fetch_and_add : int t -> int -> int
    val incr : int t -> unit
    val decr : int t -> unit
  end

  (** A non-atomic mutable cell.  Same cost as a [mutable] record
      field under {!Real}; under the model checker every access is
      recorded and checked for data races by the vector-clock
      happens-before analysis. *)
  module Plain : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  (** A non-atomic shared array (e.g. the Chase–Lev circular buffer).
      Element accesses are race-checked under the model checker. *)
  module Array : sig
    type 'a t

    val make : ?name:string -> int -> 'a -> 'a t
    val get : 'a t -> int -> 'a
    val set : 'a t -> int -> 'a -> unit
    val length : 'a t -> int
  end

  module Mutex : sig
    type t

    val create : ?name:string -> unit -> t
    val lock : t -> unit
    val unlock : t -> unit
  end

  module Condition : sig
    type t

    val create : ?name:string -> unit -> t
    val wait : t -> Mutex.t -> unit
    val signal : t -> unit
    val broadcast : t -> unit
  end

  (** Execution contexts: OS domains under {!Real}, model-scheduler
      fibers under [Mcheck.Model]. *)
  module Thread : sig
    type t

    val spawn : ?name:string -> (unit -> unit) -> t
    val join : t -> unit
    val cpu_relax : unit -> unit

    val self_id : unit -> int
    (** A small integer identifying the running thread, for
        single-owner assertions. *)
  end
end

(** The production implementation: a zero-cost veneer over
    [Stdlib.Atomic]/[Mutex]/[Condition]/[Domain].  The hot operations
    are the raw compiler primitives (declared [external] here so call
    sites inline them exactly as if [Stdlib.Atomic] had been used
    directly). *)
module Real : sig
  module Atomic : sig
    type 'a t = 'a Stdlib.Atomic.t

    val make : ?name:string -> 'a -> 'a t

    external get : 'a t -> 'a = "%atomic_load"
    external exchange : 'a t -> 'a -> 'a = "%atomic_exchange"
    external compare_and_set : 'a t -> 'a -> 'a -> bool = "%atomic_cas"
    external fetch_and_add : int t -> int -> int = "%atomic_fetch_add"
    val set : 'a t -> 'a -> unit
    val incr : int t -> unit
    val decr : int t -> unit
  end

  module Plain : sig
    type 'a t = { mutable v : 'a }

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  module Array : sig
    type 'a t = 'a array

    val make : ?name:string -> int -> 'a -> 'a t

    external get : 'a t -> int -> 'a = "%array_safe_get"
    external set : 'a t -> int -> 'a -> unit = "%array_safe_set"
    external length : 'a t -> int = "%array_length"
  end

  module Mutex : sig
    type t = Stdlib.Mutex.t

    val create : ?name:string -> unit -> t
    val lock : t -> unit
    val unlock : t -> unit
  end

  module Condition : sig
    type t = Stdlib.Condition.t

    val create : ?name:string -> unit -> t
    val wait : t -> Mutex.t -> unit
    val signal : t -> unit
    val broadcast : t -> unit
  end

  module Thread : sig
    type t = unit Domain.t

    val spawn : ?name:string -> (unit -> unit) -> t
    val join : t -> unit
    val cpu_relax : unit -> unit
    val self_id : unit -> int
  end
end
