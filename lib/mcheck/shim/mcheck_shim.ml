(* The PRIM signature lives in the .mli; here only the production
   implementation.  Everything hot is an [external] re-export of the
   same compiler primitive the Stdlib module uses, so routing
   lib/engine and lib/trace through [Real] changes no generated
   code on the fast paths (the dispatch bench's one-atomic-load
   trace gate depends on this). *)

module type PRIM = sig
  module Atomic : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
    val compare_and_set : 'a t -> 'a -> 'a -> bool
    val fetch_and_add : int t -> int -> int
    val incr : int t -> unit
    val decr : int t -> unit
  end

  module Plain : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  module Array : sig
    type 'a t

    val make : ?name:string -> int -> 'a -> 'a t
    val get : 'a t -> int -> 'a
    val set : 'a t -> int -> 'a -> unit
    val length : 'a t -> int
  end

  module Mutex : sig
    type t

    val create : ?name:string -> unit -> t
    val lock : t -> unit
    val unlock : t -> unit
  end

  module Condition : sig
    type t

    val create : ?name:string -> unit -> t
    val wait : t -> Mutex.t -> unit
    val signal : t -> unit
    val broadcast : t -> unit
  end

  module Thread : sig
    type t

    val spawn : ?name:string -> (unit -> unit) -> t
    val join : t -> unit
    val cpu_relax : unit -> unit
    val self_id : unit -> int
  end
end

module Real = struct
  module Atomic = struct
    type 'a t = 'a Stdlib.Atomic.t

    let make ?name:_ v = Stdlib.Atomic.make v

    external get : 'a t -> 'a = "%atomic_load"
    external exchange : 'a t -> 'a -> 'a = "%atomic_exchange"
    external compare_and_set : 'a t -> 'a -> 'a -> bool = "%atomic_cas"
    external fetch_and_add : int t -> int -> int = "%atomic_fetch_add"

    let set r v = ignore (exchange r v)
    let incr r = ignore (fetch_and_add r 1)
    let decr r = ignore (fetch_and_add r (-1))
  end

  module Plain = struct
    type 'a t = { mutable v : 'a }

    let make ?name:_ v = { v }
    let get c = c.v
    let set c v = c.v <- v
  end

  module Array = struct
    type 'a t = 'a array

    let make ?name:_ n v = Stdlib.Array.make n v

    external get : 'a t -> int -> 'a = "%array_safe_get"
    external set : 'a t -> int -> 'a -> unit = "%array_safe_set"
    external length : 'a t -> int = "%array_length"
  end

  module Mutex = struct
    type t = Stdlib.Mutex.t

    let create ?name:_ () = Stdlib.Mutex.create ()
    let lock = Stdlib.Mutex.lock
    let unlock = Stdlib.Mutex.unlock
  end

  module Condition = struct
    type t = Stdlib.Condition.t

    let create ?name:_ () = Stdlib.Condition.create ()
    let wait = Stdlib.Condition.wait
    let signal = Stdlib.Condition.signal
    let broadcast = Stdlib.Condition.broadcast
  end

  module Thread = struct
    type t = unit Domain.t

    let spawn ?name:_ f = Domain.spawn f
    let join = Domain.join
    let cpu_relax = Domain.cpu_relax
    let self_id () = (Domain.self () :> int)
  end
end
