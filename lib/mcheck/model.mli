(** Systematic concurrency checker: DFS over thread interleavings with
    dynamic partial-order reduction (Flanagan–Godefroid), sleep sets,
    an optional preemption bound, vector-clock happens-before race
    detection on non-atomic accesses, and deadlock / lost-wakeup
    detection.

    A scenario is ordinary code written against {!Mcheck_shim.PRIM}
    and instantiated with {!P}: every shimmed operation becomes a
    scheduling point (an OCaml effect capturing the continuation), so
    "threads" are cooperative fibers and the explorer owns the
    schedule.  {!check} re-executes the scenario once per
    non-equivalent interleaving.

    Model restrictions: scenarios must be deterministic given the
    schedule; [Condition.signal] wakes the longest-waiting thread;
    spurious wakeups are not modelled; at most 16 fibers. *)

val max_threads : int

(** The scheduler-controlled primitives.  Only usable inside a
    {!check} scenario; calling them outside raises. *)
module P : Mcheck_shim.PRIM

type config = {
  max_interleavings : int;
      (** Exploration budget: total executions + sleep-set prunes.
          {!outcome.budget_exhausted} is set when it is hit. *)
  max_steps : int;
      (** Per-execution step budget; exceeding it is reported as a
          livelock counterexample. *)
  preemption_bound : int option;
      (** When set, branches requiring more than this many
          preemptions are skipped ({!outcome.bounded} reports whether
          any were). *)
  dpor : bool;
      (** [false] disables the reduction (exhaustive DFS over all
          interleavings) — only for differential-testing the explorer
          itself. *)
}

val default_config : config
(** 100_000 interleavings, 2_000 steps, no preemption bound, DPOR
    on. *)

type race = {
  loc : string;  (** location label, e.g. ["deque0.arr[3]"] *)
  access_a : string;
  access_b : string;
}
(** Two conflicting non-atomic accesses unordered by happens-before in
    some explored interleaving. *)

type counterexample = {
  kind : string;  (** ["deadlock"], ["exception"], ["violation"], ["step-budget"] *)
  message : string;
  trace : string list;  (** the interleaving, one scheduled op per line *)
}

type outcome = {
  name : string;
  executions : int;  (** complete interleavings executed *)
  prunes : int;  (** runs cut short by sleep-set blocking *)
  steps_total : int;
  max_depth : int;  (** longest interleaving, in scheduling points *)
  races : race list;  (** deduplicated across all executions *)
  counterexample : counterexample option;
  budget_exhausted : bool;
  bounded : bool;  (** some branch was pruned by the preemption bound *)
}

val check :
  ?config:config -> ?final:(unit -> unit) -> name:string -> (unit -> unit) -> outcome
(** [check ~name scenario] explores every non-equivalent interleaving
    of [scenario] (run as fiber "main"; it spawns the rest via
    [P.Thread.spawn]).  [final] runs after each complete execution —
    raise from it (e.g. a failed [assert]) to report the schedule as a
    counterexample.  Exploration stops at the first counterexample.
    Not reentrant. *)
