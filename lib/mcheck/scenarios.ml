(* Model-check harnesses for the engine's concurrent internals.

   Each scenario is a small, bounded program over {!Model.P} — the
   deque and pool instantiated with the DPOR scheduler's shim — whose
   final assertion states the exactly-once / completion contract.
   Clean scenarios must explore with no counterexample and only the
   documented benign races; [bug] scenarios deliberately re-introduce
   a historical ordering bug and the checker must find it (that is the
   CI regression gate for the checker itself: if exploration or the
   dependency analysis rots, the seeded bugs stop being found). *)

module P = Model.P
module TD = Engine.Task_deque.Make (Model.P)
module Pool = Engine.Coordinator.Pool_make (Model.P)

type t = {
  name : string;
  descr : string;
  bug : bool;
  expected_races : string list;
  required_races : string list;
  config : Model.config;
  run : Model.config -> Model.outcome;
}

let claim claims = function Some v -> claims := v :: !claims | None -> ()

let assert_claims ~expect claims =
  let got = List.sort compare !claims in
  if got <> List.sort compare expect then
    failwith
      (Printf.sprintf "claimed {%s}, want {%s}"
         (String.concat "," (List.map string_of_int got))
         (String.concat "," (List.map string_of_int (List.sort compare expect))))

(* Owner pops race one thief for the last element; both sides CAS
   [top] and exactly one may win.  Also exercises the owner-side sweep
   of stolen slots (the benign stale-read race on [deq.arr]). *)
let deque_last_element config =
  Model.check ~config ~name:"deque_last_element" (fun () ->
      let d = TD.create ~capacity:2 ~name:"deq" () in
      let claims = ref [] in
      TD.push d 1;
      TD.push d 2;
      let th =
        P.Thread.spawn ~name:"thief" (fun () -> claim claims (TD.steal d))
      in
      claim claims (TD.pop d);
      claim claims (TD.pop d);
      claim claims (TD.pop d);
      P.Thread.join th;
      assert_claims ~expect:[ 1; 2 ] claims)

(* Start at capacity 1 and push through two growths while a thief
   steals concurrently: every element lands in exactly one claimer
   whichever buffer it was read from. *)
let deque_grow_steal config =
  Model.check ~config ~name:"deque_grow_steal" (fun () ->
      let d = TD.create ~capacity:1 ~name:"deq" () in
      let claims = ref [] in
      TD.push d 1;
      let th =
        P.Thread.spawn ~name:"thief" (fun () ->
            for _ = 1 to 2 do
              claim claims (TD.steal d)
            done)
      in
      TD.push d 2;
      TD.push d 3;
      let rec drain () =
        match TD.pop d with
        | Some v ->
          claims := v :: !claims;
          drain ()
        | None -> ()
      in
      drain ();
      P.Thread.join th;
      (* the thief may have claimed 0–2 of them; drain the tail *)
      drain ();
      assert_claims ~expect:[ 1; 2; 3 ] claims)

(* BUG: a second thread uses the owner-only [pop] concurrently with
   the owner's [push] ([check_owner:false] disables the runtime
   assert) — the shape of the historical pool bug, a worker sweeping
   with [pop] while the caller pushes the next round.  The rogue's
   speculative bottom decrement and the owner's bottom publish
   overwrite each other and an element is lost; the checker must find
   that interleaving. *)
let deque_two_owner_pop config =
  Model.check ~config ~name:"deque_two_owner_pop" (fun () ->
      let d = TD.create ~capacity:4 ~check_owner:false ~name:"deq" () in
      let claims = ref [] in
      TD.push d 1;
      TD.push d 2;
      let rogue =
        P.Thread.spawn ~name:"rogue" (fun () -> claim claims (TD.pop d))
      in
      TD.push d 3;
      P.Thread.join rogue;
      let rec drain () =
        match TD.pop d with
        | Some v ->
          claims := v :: !claims;
          drain ()
        | None -> ()
      in
      drain ();
      assert_claims ~expect:[ 1; 2; 3 ] claims)

(* The [size] contract from task_deque.mli: with [claimed] read before
   [size] and [pushed] read after, [size <= pushed - claimed] in every
   interleaving. *)
let deque_size_bound config =
  Model.check ~config ~name:"deque_size_bound" (fun () ->
      let d = TD.create ~capacity:4 ~name:"deq" () in
      let pushed = P.Atomic.make ~name:"pushed" 0 in
      let claimed = P.Atomic.make ~name:"claimed" 0 in
      P.Atomic.incr pushed;
      TD.push d 1;
      let thief =
        P.Thread.spawn ~name:"thief" (fun () ->
            match TD.steal d with
            | Some _ -> P.Atomic.incr claimed
            | None -> ())
      in
      let observer =
        P.Thread.spawn ~name:"observer" (fun () ->
            let c0 = P.Atomic.get claimed in
            let s = TD.size d in
            let p0 = P.Atomic.get pushed in
            if s > p0 - c0 then
              failwith
                (Printf.sprintf "size %d > pushed %d - claimed %d" s p0 c0))
      in
      P.Atomic.incr pushed;
      TD.push d 2;
      (match TD.pop d with
      | Some _ -> P.Atomic.incr claimed
      | None -> ());
      P.Thread.join thief;
      P.Thread.join observer)

(* One full pool round over two domains: count-before-push, the
   round-completion signal vs the caller's wait, and the shutdown
   broadcast vs a parked worker. *)
let pool_round config =
  Model.check ~config ~name:"pool_round" (fun () ->
      let p = Pool.create ~domains:2 () in
      let a = ref 0 and b = ref 0 in
      Pool.run_round p [ (fun () -> incr a); (fun () -> incr b) ];
      Pool.shutdown p;
      if !a <> 1 || !b <> 1 then
        failwith (Printf.sprintf "tasks ran a=%d b=%d, want 1 each" !a !b))

(* Shutdown racing worker start-up: the stop broadcast must reach a
   worker whether it has parked yet or not. *)
let pool_shutdown config =
  Model.check ~config ~name:"pool_shutdown" (fun () ->
      let p = Pool.create ~domains:2 () in
      Pool.shutdown p)

(* BUG: workers take tasks with the owner-only [pop] (the pre-PR 6
   ordering).  The corruption needs round overlap — a worker still
   sweeping round 1 with [pop] while the caller pushes round 2 — and
   loses a task: the remaining counter never reaches zero and the
   caller deadlocks on the completion wait. *)
let pool_two_owner_pop config =
  Model.check ~config ~name:"pool_two_owner_pop" (fun () ->
      let p = Pool.create ~seeded_bug:`Two_owner_pop ~domains:2 () in
      let a = ref 0 and b = ref 0 and c = ref 0 in
      Pool.run_round p [ (fun () -> incr a) ];
      Pool.run_round p [ (fun () -> incr b); (fun () -> incr c) ];
      Pool.shutdown p;
      if !a <> 1 || !b <> 1 || !c <> 1 then
        failwith (Printf.sprintf "tasks ran a=%d b=%d c=%d, want 1 each" !a !b !c))

(* BUG: the round's tasks are published before the outstanding counter
   is set.  A worker still sweeping from the previous round steals a
   task early, drives the counter negative, and the caller parks on
   the completion condition forever: a deadlock counterexample. *)
let pool_count_after_push config =
  Model.check ~config ~name:"pool_count_after_push" (fun () ->
      let p = Pool.create ~seeded_bug:`Count_after_push ~domains:2 () in
      let r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
      Pool.run_round p [ (fun () -> incr r1) ];
      Pool.run_round p [ (fun () -> incr r2); (fun () -> incr r3) ];
      Pool.shutdown p;
      if !r1 <> 1 || !r2 <> 1 || !r3 <> 1 then
        failwith
          (Printf.sprintf "tasks ran %d/%d/%d, want 1 each" !r1 !r2 !r3))

(* Model replica of the Trace sink publication protocol
   (lib/trace/trace.ml): the [active_sinks] gate is incremented before
   a state with a live sink becomes visible to any domain, so a domain
   that adopted such a state can never read the gate as 0 and drop a
   record; and the hand-off through the atomic cell orders the plain
   state-field accesses (no race reported). *)
let trace_publication config =
  Model.check ~config ~name:"trace_publication" (fun () ->
      let active = P.Atomic.make ~name:"active_sinks" 0 in
      let published = P.Atomic.make ~name:"state.cell" 0 in
      let st_active = P.Plain.make ~name:"state.active" false in
      let emitted = ref 0 and dropped = ref 0 and adopted = ref false in
      let consumer =
        P.Thread.spawn ~name:"shard" (fun () ->
            if P.Atomic.get published = 1 then begin
              adopted := true;
              (* emit fast path: one atomic load gates the sink lookup *)
              if P.Atomic.get active > 0 then begin
                if P.Plain.get st_active then incr emitted
              end
              else incr dropped;
              (* uninstall: clear the sink, then release the gate *)
              P.Plain.set st_active false;
              P.Atomic.decr active
            end)
      in
      (* make_state: gate up BEFORE the state is visible to any domain *)
      P.Atomic.incr active;
      P.Plain.set st_active true;
      P.Atomic.set published 1 (* swap_state hand-off *);
      P.Thread.join consumer;
      if !adopted && !dropped > 0 then
        failwith "live sink but gate read 0: record dropped";
      if !adopted && !emitted <> 1 then failwith "adopted sink did not emit")

let deque_races = [ "deq.arr" ]
let pool_races = [ "deque0.arr"; "deque1.arr" ]

let all =
  [
    {
      name = "deque_last_element";
      descr = "owner pop races one thief for the last element";
      bug = false;
      expected_races = deque_races;
      required_races = deque_races;
      config = Model.default_config;
      run = deque_last_element;
    };
    {
      name = "deque_grow_steal";
      descr = "capacity-1 deque grows twice under a concurrent thief";
      bug = false;
      expected_races = deque_races;
      required_races = [];
      config = Model.default_config;
      run = deque_grow_steal;
    };
    {
      name = "deque_size_bound";
      descr = "size <= pushed - claimed with claimed read first";
      bug = false;
      expected_races = deque_races;
      required_races = [];
      config = Model.default_config;
      run = deque_size_bound;
    };
    {
      name = "deque_two_owner_pop";
      descr = "SEEDED BUG: concurrent owner-only pops corrupt the deque";
      bug = true;
      expected_races = [];
      required_races = [];
      config = Model.default_config;
      run = deque_two_owner_pop;
    };
    {
      name = "pool_round";
      descr = "one 2-domain round: completion signal vs caller wait";
      bug = false;
      expected_races = pool_races;
      required_races = [];
      config = Model.default_config;
      run = pool_round;
    };
    {
      name = "pool_shutdown";
      descr = "stop broadcast vs a worker that may not have parked yet";
      bug = false;
      expected_races = pool_races;
      required_races = [];
      config = Model.default_config;
      run = pool_shutdown;
    };
    {
      name = "pool_two_owner_pop";
      descr = "SEEDED BUG: workers pop instead of steal";
      bug = true;
      expected_races = [];
      required_races = [];
      config = Model.default_config;
      run = pool_two_owner_pop;
    };
    {
      name = "pool_count_after_push";
      descr = "SEEDED BUG: tasks published before the outstanding count";
      bug = true;
      expected_races = [];
      required_races = [];
      config = Model.default_config;
      run = pool_count_after_push;
    };
    {
      name = "trace_publication";
      descr = "active_sinks gate up before the state is published";
      bug = false;
      expected_races = [];
      required_races = [];
      config = Model.default_config;
      run = trace_publication;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let unexpected_races sc (o : Model.outcome) =
  List.filter
    (fun (r : Model.race) ->
      not (List.exists (fun p -> has_prefix p r.loc) sc.expected_races))
    o.races

let missing_races sc (o : Model.outcome) =
  List.filter
    (fun p ->
      not (List.exists (fun (r : Model.race) -> has_prefix p r.loc) o.races))
    sc.required_races

let evaluate sc (o : Model.outcome) =
  if sc.bug then
    match o.counterexample with
    | Some c ->
      ( true,
        Printf.sprintf "seeded bug found (%s) after %d interleavings" c.kind
          o.executions )
    | None ->
      ( false,
        if o.budget_exhausted then
          "budget exhausted without finding the seeded bug"
        else "seeded bug NOT found: explorer or dependency analysis regressed"
      )
  else
    match o.counterexample with
    | Some c -> (false, Printf.sprintf "counterexample (%s): %s" c.kind c.message)
    | None -> (
      match unexpected_races sc o with
      | _ :: _ as ur ->
        ( false,
          "unexpected data race on "
          ^ String.concat ", "
              (List.sort_uniq compare (List.map (fun r -> r.Model.loc) ur)) )
      | [] -> (
        match missing_races sc o with
        | _ :: _ as ms ->
          ( false,
            "documented benign race not observed (instrumentation loss?): "
            ^ String.concat ", " ms )
        | [] ->
          if o.budget_exhausted then (false, "exploration budget exhausted")
          else
            ( true,
              Printf.sprintf "clean: %d interleavings, %d pruned"
                o.executions o.prunes )))
