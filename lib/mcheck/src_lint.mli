(** Source lint: forbid raw concurrency primitives ([Atomic.],
    [Mutex.], [Condition.], [Domain.spawn]) in [lib/engine] and
    [lib/trace] — everything must go through a {!Mcheck_shim.PRIM}
    functor parameter named [P] or the [Mcheck_shim.Real] instance, or
    the model checker cannot see it.  Run by [hermes_sim verify] and
    CI. *)

type violation = {
  file : string;
  line : int;  (** 1-based *)
  token : string;  (** e.g. ["Atomic"] or ["Stdlib...Mutex"] *)
  context : string;  (** the offending source line, trimmed *)
}

val strip : string -> string
(** Comments (nested, string-aware), string / quoted-string / char
    literals replaced by spaces; newlines preserved. *)

val scan_source : file:string -> string -> violation list
(** Lint one compilation unit's source text. *)

val default_dirs : string list
(** The directories under the repo root that must be shim-clean. *)

val scan_tree : root:string -> (violation list, string) result
(** Lint every [.ml]/[.mli] under [root]'s {!default_dirs}.  [Error]
    if none of the directories exist (wrong [--src-root]). *)
