(** Model-check harnesses for {!Engine.Task_deque} and the
    {!Engine.Coordinator} pool (plus a replica of the Trace sink
    publication protocol), run by [hermes_sim mcheck].

    Clean scenarios must explore without a counterexample, with no
    races beyond [expected_races], and (for [required_races]) must
    actually observe the documented benign races.  [bug] scenarios
    re-introduce a historical ordering bug behind a seed flag and pass
    only when the checker finds a counterexample — the regression gate
    for the checker itself. *)

type t = {
  name : string;
  descr : string;
  bug : bool;  (** true: the checker must find a counterexample *)
  expected_races : string list;
      (** location-name prefixes of documented benign races *)
  required_races : string list;
      (** prefixes that must be observed for the scenario to pass *)
  config : Model.config;  (** per-scenario exploration budget *)
  run : Model.config -> Model.outcome;
}

val all : t list
val find : string -> t option

val unexpected_races : t -> Model.outcome -> Model.race list
val missing_races : t -> Model.outcome -> string list

val evaluate : t -> Model.outcome -> bool * string
(** [(pass, reason)] under the rules above. *)
